/**
 * @file
 * Quickstart: the experiment pipeline in one spec.
 *
 * 1. Name a workload.    ("ghz:10"   — api::WorkloadRegistry)
 * 2. Name a backend.     ("channel"  — api::BackendRegistry)
 * 3. Name mitigation.    ("hammer"   — api::MitigationChain)
 * 4. Run.                (api::Pipeline — route, execute, mitigate,
 *                         score, all timed)
 */

#include <cstdio>

#include "api/api.hpp"
#include "metrics/metrics.hpp"

int
main()
{
    using namespace hammer;

    // A 10-qubit GHZ state: ideally half |0...0>, half |1...1>,
    // executed on a simulated IBM-like machine.
    api::ExperimentSpec spec;
    spec.workload = "ghz:10";
    spec.backend = "channel";
    spec.backendSpec.machine = "machineB";
    spec.backendSpec.shots = api::smokeShots(8192);
    spec.backendSpec.seed = 42;
    spec.mitigation = "hammer";

    const api::Result result = api::Pipeline().run(spec);

    std::printf("GHZ-10 on a noisy machine (%d shots)\n",
                result.shots);
    std::printf("  correct-outcome probability: %.3f -> %.3f\n",
                result.pstRaw, result.pstMitigated);
    const auto &correct = result.workload->correctOutcomes;
    std::printf("  top outcome is correct:      %s -> %s\n",
                metrics::inferredCorrectly(result.raw, correct)
                    ? "yes" : "no",
                metrics::inferredCorrectly(result.mitigated, correct)
                    ? "yes" : "no");
    std::printf("\nmost probable outcomes after HAMMER:\n%s",
                result.mitigated.toString(5).c_str());
    std::printf("\npipeline wall-clock: %.3f s (sampling %.3f s, "
                "mitigation %.3f s)\n",
                result.totalSeconds(), result.stageSeconds("sample"),
                result.stageSeconds("mitigate"));
    return 0;
}
