/**
 * @file
 * Quickstart: the five-line HAMMER workflow.
 *
 * 1. Build a circuit.            (hammer::circuits)
 * 2. Execute it on a noisy NISQ  (hammer::noise — here a simulated
 *    machine).                    IBM-like backend)
 * 3. Post-process the histogram  (hammer::core::reconstruct)
 * 4. Compare fidelity metrics.   (hammer::metrics)
 */

#include <cstdio>

#include "circuits/ghz.hpp"
#include "circuits/transpiler.hpp"
#include "core/hammer.hpp"
#include "metrics/metrics.hpp"
#include "noise/channel_sampler.hpp"

int
main()
{
    using namespace hammer;

    // A 10-qubit GHZ state: ideally half |0...0>, half |1...1>.
    const int n = 10;
    const auto routed = circuits::trivialRouting(circuits::ghz(n));
    const std::vector<common::Bits> correct{
        0, (common::Bits{1} << n) - 1};

    // Execute 8192 shots on a simulated IBM-like machine.
    common::Rng rng(42);
    noise::ChannelSampler machine(noise::machinePreset("machineB"));
    const core::Distribution noisy =
        machine.sample(routed, n, 8192, rng);

    // One call: Hamming Reconstruction.
    const core::Distribution reconstructed = core::reconstruct(noisy);

    std::printf("GHZ-%d on a noisy machine (8192 shots)\n", n);
    std::printf("  correct-outcome probability: %.3f -> %.3f\n",
                metrics::pst(noisy, correct),
                metrics::pst(reconstructed, correct));
    std::printf("  top outcome is correct:      %s -> %s\n",
                metrics::inferredCorrectly(noisy, correct) ? "yes"
                                                           : "no",
                metrics::inferredCorrectly(reconstructed, correct)
                    ? "yes" : "no");
    std::printf("\nmost probable outcomes after HAMMER:\n%s",
                reconstructed.toString(5).c_str());
    return 0;
}
