/**
 * @file
 * hammer_calibrate — fit cost-model coefficients from bench
 * telemetry.
 *
 * Reads one or more BENCH_plan.json files (bench/plan_accuracy.cpp
 * output), rebuilds each grid cell's feature vector from its workload
 * spec (the grid seed/shots/trajectories are recorded in the
 * telemetry, so the reconstruction is exact), pairs it with the
 * measured wall-clock, and runs plan::Calibrator::fit.  The fitted
 * table lands in calibration.json, ready for `hammer --calibration`
 * or $HAMMER_CALIBRATION.
 *
 * Re-fit procedure (see README "Plan selection & admission control"):
 *
 *   HAMMER_BENCH_JSON=1 ./build/bench_plan_accuracy
 *   ./build/hammer_calibrate BENCH_plan.json -o calibration.json
 *   HAMMER_CALIBRATION=calibration.json ./build/hammer ...
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "api/autoplan.hpp"
#include "plan/cost_model.hpp"

namespace {

using namespace hammer;

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [-o <calibration.json>] <BENCH_plan.json>...\n"
        "\n"
        "Fits plan::CalibrationTable coefficients from plan-accuracy\n"
        "bench telemetry and writes the table as calibration.json\n"
        "(default output: calibration.json in the working directory).\n",
        argv0);
    return code;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * Harvest the calibration samples of one BENCH_plan.json document.
 * Returns the number of samples added.
 */
std::size_t
harvest(const std::string &path, plan::Calibrator &calibrator)
{
    const api::JsonValue doc = api::parseJson(readFile(path));
    const api::JsonValue &metrics = doc.at("metrics");

    const std::uint64_t grid_seed = static_cast<std::uint64_t>(
        metrics.at("grid_seed").asNumber());
    const int shots =
        static_cast<int>(metrics.at("grid_shots").asNumber());
    const int trajectories = static_cast<int>(
        metrics.at("grid_trajectories").asNumber());

    api::BackendSpec backendSpec;
    backendSpec.shots = shots;
    backendSpec.trajectories = trajectories;
    backendSpec.seed = grid_seed;
    const noise::NoiseModel model =
        api::resolveNoiseModel(backendSpec);

    std::size_t added = 0;
    const std::string prefix = "measured_ms__";
    for (const auto &[key, value] : metrics.members()) {
        if (key.rfind(prefix, 0) != 0)
            continue;
        const std::string rest = key.substr(prefix.size());
        const std::size_t sep = rest.find("__");
        if (sep == std::string::npos)
            continue;
        const std::string backend = rest.substr(0, sep);
        const std::string cell = rest.substr(sep + 2);
        // `auto` rows duplicate whichever backend auto selected;
        // fitting them would double-weight those cells.
        if (backend == "auto")
            continue;

        common::Rng rng(grid_seed);
        const api::Workload workload =
            api::WorkloadRegistry::global().make(cell, rng);

        plan::CalibrationSample sample;
        sample.features = plan::extractFeatures(
            workload.routed.circuit, model, shots, trajectories);
        sample.choice.backend = backend;
        sample.measuredSeconds = value.asNumber() / 1e3;
        calibrator.addSample(sample);
        ++added;
    }
    return added;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hammer;

    std::string output = "calibration.json";
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help")
            return usage(argv[0], 0);
        if (arg == "-o" || arg == "--output") {
            if (i + 1 >= argc)
                return usage(argv[0], 2);
            output = argv[++i];
            continue;
        }
        inputs.push_back(arg);
    }
    if (inputs.empty())
        return usage(argv[0], 2);

    try {
        plan::Calibrator calibrator;
        for (const std::string &path : inputs) {
            const std::size_t added = harvest(path, calibrator);
            std::printf("%s: %zu samples\n", path.c_str(), added);
        }
        if (calibrator.sampleCount() == 0) {
            std::fprintf(stderr,
                         "%s: no measured_ms__ samples found\n",
                         argv[0]);
            return 1;
        }

        const plan::CalibrationTable seed =
            plan::defaultCalibrationTable();
        const plan::CalibrationTable fitted = calibrator.fit(seed);

        std::printf("fitted %zu samples -> version %d\n",
                    calibrator.sampleCount(), fitted.version);
        std::printf("  dense1q_row_ns  %8.3f (seed %.3f)\n",
                    fitted.dense1qRowNs, seed.dense1qRowNs);
        std::printf("  diag_row_ns     %8.3f (seed %.3f)\n",
                    fitted.diagRowNs, seed.diagRowNs);
        std::printf("  perm_row_ns     %8.3f (seed %.3f)\n",
                    fitted.permRowNs, seed.permRowNs);
        std::printf("  twoq_row_ns     %8.3f (seed %.3f)\n",
                    fitted.twoqRowNs, seed.twoqRowNs);
        std::printf("  shot_ns         %8.3f (seed %.3f)\n",
                    fitted.shotNs, seed.shotNs);
        std::printf("  channel_flip_ns %8.3f (seed %.3f)\n",
                    fitted.channelFlipNs, seed.channelFlipNs);

        std::ofstream out(output);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                         output.c_str());
            return 1;
        }
        out << api::calibrationJson(fitted) << '\n';
        std::printf("wrote %s\n", output.c_str());
        return 0;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
        return 1;
    }
}
