/**
 * @file
 * hammer_cli — apply Hamming Reconstruction to a histogram.
 *
 * Usage:
 *   hammer_cli [options] < input.csv > output.csv
 *   hammer_cli --sample <spec> [options] > output.csv
 *
 * Input/output format: CSV lines `bitstring,count-or-probability`
 * (the format core/io.hpp reads and writes), or one JSON object with
 * histograms, per-stage timings and reconstruction statistics
 * (--format json).  The CSV path is the adoption route for users
 * whose measurement data comes from real hardware or another stack:
 * no linking against the library required.
 *
 * With --sample the histogram is produced by the built-in noisy
 * simulator instead of stdin.  Every --sample run goes through
 * api::Pipeline: the workload comes from api::WorkloadRegistry, the
 * backend from api::BackendRegistry, and the post-processing from an
 * api::MitigationChain — the same composable path the benches,
 * examples and tests use.
 *
 * Reconstruction options:
 *   --radius <d>       neighbourhood bound (default: floor((n-1)/2))
 *   --no-filter        disable the lower-probability filter pi
 *   --weights <w>      inverse-chs | uniform | inverse-binomial
 *   --additive         additive score combination (default:
 *                      multiplicative)
 *   --iterations <k>   apply the reconstruction k times (default 1)
 *   --fast             use the popcount-pruned implementation
 *   --mitigation <c>   replace the HAMMER stage with an arbitrary
 *                      chain, e.g. "readout,hammer" or "none"
 *                      (overrides the reconstruction options above)
 *   --top <k>          print only the k most probable outcomes
 *   --stats            print reconstruction statistics to stderr
 *   --format <f>       csv (default) | json
 *
 * Sampling options:
 *   --sample <spec>    workload registry spec: bv:<n>[:<key>] |
 *                      ghz:<n> | qaoa:[<family>:]<n>:<p> |
 *                      mirror:<n>[:<depth>]
 *   --machine <name>   noise preset (default machineA)
 *   --backend <b>      trajectory | channel | exact
 *                      (default trajectory)
 *   --shots <k>        shot budget (default 8192)
 *   --trajectories <t> noise trajectories (default 250)
 *   --threads <N>      worker threads; results are bit-identical for
 *                      every N (default: HAMMER_THREADS env, else all
 *                      hardware threads)
 *   --seed <s>         RNG seed (default 1)
 *   --time             print sampling wall-clock to stderr
 *
 * Serving (the api::ExecutionService front door):
 *   --serve <file|->   read one experiment spec per line (JSON
 *                      object or positional CSV, see
 *                      api::parseSpecLine; an optional "priority"
 *                      key / 8th CSV field jumps the queue) from the
 *                      file or stdin, run them through the
 *                      asynchronous batching service (--threads
 *                      workers), and stream one JSON result line per
 *                      spec as jobs complete; a human summary plus
 *                      one machine-readable service_stats JSON line
 *                      go to stderr
 *   --canonical        emit results in submit order in canonical
 *                      form (label/timings stripped) so two runs —
 *                      local or sharded — diff byte-exactly
 *   --shards <list>    route --serve traffic across a comma-
 *                      separated shard fleet (net::ShardRouter) by
 *                      execution-key hash instead of executing
 *                      locally
 *   --shard --listen <addr>
 *                      run one shard worker: serve framed spec
 *                      traffic on addr (unix:/path | tcp:host:port)
 *                      until SIGTERM/SIGINT or a Shutdown frame,
 *                      then drain and print service_stats to stderr
 *   --list <what>      enumerate registry contents and exit:
 *                      workloads | backends | mitigations
 *   --help             this text
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "api/autoplan.hpp"
#include "common/thread_pool.hpp"
#include "plan/cost_model.hpp"
#include "core/io.hpp"
#include "net/router.hpp"
#include "net/shard_worker.hpp"
#include "sim/kernels.hpp"

namespace {

[[noreturn]] void
usage(int exit_code)
{
    std::fprintf(
        exit_code == 0 ? stdout : stderr,
        "usage: hammer_cli [options] < histogram.csv > out.csv\n"
        "       hammer_cli --sample <spec> [options] > out.csv\n"
        "reconstruction:\n"
        "  --radius <d>      neighbourhood bound "
        "(default floor((n-1)/2))\n"
        "  --no-filter       disable the lower-probability filter\n"
        "  --weights <w>     inverse-chs | uniform | "
        "inverse-binomial\n"
        "  --additive        additive score combination\n"
        "  --iterations <k>  apply reconstruction k times\n"
        "  --fast            popcount-pruned implementation\n"
        "  --mitigation <c>  explicit chain, e.g. readout,hammer "
        "(overrides the options above; 'none' disables)\n"
        "  --top <k>         emit only the k most probable outcomes\n"
        "  --stats           reconstruction statistics on stderr\n"
        "  --format <f>      csv (default) | json\n"
        "sampling (instead of reading stdin):\n"
        "  --sample <spec>   bv:<n>[:<key>] | ghz:<n> | "
        "qaoa:[<family>:]<n>:<p> | mirror:<n>[:<depth>]\n"
        "  --machine <name>  noise preset (default machineA)\n"
        "  --backend <b>     trajectory | channel | exact | "
        "exact-cached | auto (default trajectory);\n"
        "                    auto ranks candidate plans under the "
        "active cost calibration and runs the cheapest\n"
        "  --explain-plan    with --sample: print the ranked "
        "candidate plans (predicted cost, top cost groups)\n"
        "                    instead of executing, and exit\n"
        "  --calibration <f> load cost-model coefficients from a "
        "calibration.json (see hammer_calibrate;\n"
        "                    $HAMMER_CALIBRATION does the same "
        "without the flag)\n"
        "  --shots <k>       shot budget (default 8192)\n"
        "  --trajectories <t> noise trajectories (default 250)\n"
        "  --threads <N>     worker threads (default: HAMMER_THREADS "
        "env, else all cores); output is bit-identical for every N\n"
        "  --seed <s>        RNG seed (default 1)\n"
        "  --time            sampling wall-clock on stderr\n"
        "serving:\n"
        "  --serve <file|->  run spec lines (JSON object or CSV\n"
        "                    workload[,backend[,shots[,seed[,"
        "mitigation[,machine[,label[,priority]]]]]]],\n"
        "                    chains as readout+hammer in CSV; higher "
        "priority runs first)\n"
        "                    through the batching ExecutionService; "
        "one JSON result line per spec;\n"
        "                    a service_stats JSON line goes to "
        "stderr\n"
        "  --deadline <ms>   per-job completion deadline for --serve: "
        "a job whose predicted completion\n"
        "                    already misses it is shed at admission "
        "(deadline_infeasible), and a job that\n"
        "                    misses it at runtime is reported as timed "
        "out on stderr and skipped\n"
        "                    instead of wedging the stream\n"
        "  --retry-budget <t> cap retries with a t-token budget "
        "(refilled by admissions): exhausted\n"
        "                    budgets fail jobs typed retry_budget "
        "instead of retrying unboundedly;\n"
        "                    applies to the service (--serve) or the "
        "router (--serve --shards)\n"
        "  --degraded-ok     allow explicitly-flagged degraded "
        "results: an overloaded --serve may\n"
        "                    answer from a cached lower-trajectory "
        "run (\"degraded\": true); with\n"
        "                    --shards, arms per-shard circuit "
        "breakers (threshold 3) so a dead\n"
        "                    fleet fails fast as breaker_open\n"
        "  --canonical       emit results in submit order, canonical "
        "form (label/timings stripped):\n"
        "                    two runs over the same specs diff "
        "byte-exactly\n"
        "  --shards <list>   comma-separated shard addresses "
        "(unix:/path | tcp:host:port):\n"
        "                    route --serve traffic across the fleet "
        "by execution-key hash\n"
        "  --shard           run one shard worker (requires "
        "--listen); SIGTERM drains cleanly\n"
        "  --listen <addr>   shard listen address "
        "(unix:/path | tcp:host:port)\n"
        "  --list <what>     workloads | backends | mitigations\n"
        "diagnostics:\n"
        "  --kernels         print the dispatched simulation kernel "
        "tier (ISA), vector and batch widths, and exit\n");
    std::exit(exit_code);
}

int
parsePositiveInt(const char *text, const char *flag)
{
    try {
        return hammer::api::parsePositiveInt(text, flag);
    } catch (const std::invalid_argument &) {
        std::fprintf(stderr, "hammer_cli: bad value for %s: '%s'\n",
                     flag, text);
        std::exit(2);
    }
}

/** Keep only the @p top most probable outcomes (top <= 0 = all). */
hammer::core::Distribution
truncated(const hammer::core::Distribution &dist, int top)
{
    if (top <= 0)
        return dist;
    hammer::core::Distribution kept(dist.numBits());
    int emitted = 0;
    for (const auto &e : dist.sortedByProbability()) {
        if (emitted++ >= top)
            break;
        kept.set(e.outcome, e.probability);
    }
    return kept;
}

void
emit(const hammer::api::Result &result, const std::string &format,
     int top)
{
    if (format == "json") {
        result.writeJson(std::cout, top > 0 ? top : -1);
    } else {
        hammer::core::writeDistributionCsv(
            std::cout, truncated(result.mitigated, top));
    }
}

/**
 * --kernels: report the dispatched kernel tier.  The "supported
 * tiers" line is machine-parsed by tests/sim/run_tier_suite.sh to
 * decide whether a forced-tier parity leg runs or skips.
 */
int
printKernels()
{
    namespace sim = hammer::sim;
    const sim::KernelTable &active = sim::activeKernels();
    std::printf("active tier: %s\n", sim::tierName(active.tier));
    std::printf("vector width: %d doubles\n", active.lanes);
    std::printf("batch lane multiple: %d doubles\n",
                static_cast<int>(sim::kBatchLaneMultiple));
    std::printf("supported tiers:");
    for (sim::KernelTier tier : sim::supportedTiers())
        std::printf(" %s", sim::tierName(tier));
    std::printf("\n");
    return 0;
}

/** --list <what>: enumerate one registry. */
int
listRegistry(const std::string &what)
{
    using namespace hammer::api;
    if (what == "workloads") {
        std::cout << WorkloadRegistry::global().usage() << '\n';
    } else if (what == "backends") {
        for (const auto &name : BackendRegistry::global().names())
            std::cout << name << '\n';
    } else if (what == "mitigations") {
        std::cout << MitigatorRegistry::global().usage() << '\n';
    } else {
        std::fprintf(stderr,
                     "hammer_cli: --list wants workloads | backends "
                     "| mitigations, not '%s'\n", what.c_str());
        return 2;
    }
    return 0;
}

/**
 * --serve: parse spec lines from @p input, run them through one
 * ExecutionService, stream JSON result lines as jobs complete.
 *
 * @param deadline_ms Per-job completion budget (0 = wait forever).
 *        Enforced with ExecutionService::waitFor, so one stuck or
 *        stalled job costs the stream at most one deadline window
 *        and a typed stderr line instead of wedging it.
 */
int
serve(std::istream &input, int threads, int top, int deadline_ms,
      bool canonical, int retry_budget, bool degraded_ok)
{
    using namespace hammer::api;

    // Parse everything up front so malformed traffic fails before
    // any cycles are spent executing.
    std::vector<SpecLine> requests;
    std::string line;
    int line_number = 0;
    while (std::getline(input, line)) {
        ++line_number;
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        try {
            requests.push_back(parseSpecLine(line));
        } catch (const std::exception &error) {
            std::fprintf(stderr, "hammer_cli: --serve line %d: %s\n",
                         line_number, error.what());
            return 2;
        }
    }

    ExecutionServiceOptions options;
    options.workers = threads;
    // The serving path runs long enough for cost-model drift to
    // matter: alert when a 64-job window's predicted/measured ratio
    // leaves the calibration band.
    options.driftWindow = 64;
    if (retry_budget > 0) {
        options.retryBudget = true;
        options.retryBudgetOptions.initialTokens = retry_budget;
        options.retryBudgetOptions.maxTokens =
            std::max<double>(retry_budget,
                             options.retryBudgetOptions.maxTokens);
    }
    options.degradedServing = degraded_ok;
    ExecutionService service{options};

    int failures = 0;
    std::vector<ExecutionService::JobHandle> handles;
    handles.reserve(requests.size());
    for (const SpecLine &request : requests) {
        // A per-line "deadline_ms" wins; otherwise --deadline is
        // the admission deadline for every job.
        const double deadline = request.deadlineMs > 0.0
                                    ? request.deadlineMs
                                    : deadline_ms;
        try {
            handles.push_back(service.submit(
                request.spec, request.priority, deadline));
        } catch (const DeadlineInfeasibleError &error) {
            // A shed is a per-job outcome, not a fatal one: the
            // stream keeps serving the feasible jobs.
            std::fprintf(stderr, "hammer_cli: --serve: %s\n",
                         error.what());
            ++failures;
        } catch (const std::exception &error) {
            std::fprintf(stderr, "hammer_cli: --serve: %s\n",
                         error.what());
            return 2;
        }
    }
    if (canonical) {
        // Canonical mode trades streaming latency for diffability:
        // submit-order emission with label/timings stripped, so the
        // byte stream depends only on the specs — comparable 1:1
        // against a sharded run's --canonical output.
        for (std::size_t i = 0; i < handles.size(); ++i) {
            try {
                const Result result = service.wait(handles[i]);
                std::cout << canonicalResultJson(result.json(-1))
                          << '\n';
            } catch (const std::exception &error) {
                std::fprintf(stderr,
                             "hammer_cli: --serve job %llu: %s\n",
                             static_cast<unsigned long long>(
                                 handles[i].id()),
                             error.what());
                ++failures;
            }
        }
        std::cout.flush();
        std::fprintf(stderr, "%s\n",
                     serviceStatsJson(service.stats(),
                                      service.workers())
                         .c_str());
        return failures == 0 ? 0 : 1;
    }

    // Stream each result as soon as its job finishes (order follows
    // completion, not submission — this is a server, not a batch).
    std::vector<bool> emitted(handles.size(), false);
    std::size_t remaining = handles.size();
    while (remaining > 0) {
        bool progressed = false;
        for (std::size_t i = 0; i < handles.size(); ++i) {
            if (emitted[i] || !service.poll(handles[i]))
                continue;
            emitted[i] = true;
            --remaining;
            progressed = true;
            try {
                const Result result = service.wait(handles[i]);
                result.writeJson(std::cout, top > 0 ? top : -1);
                std::cout.flush();
            } catch (const std::exception &error) {
                std::fprintf(stderr,
                             "hammer_cli: --serve job %llu: %s\n",
                             static_cast<unsigned long long>(
                                 handles[i].id()),
                             error.what());
                ++failures;
            }
        }
        if (!progressed && remaining > 0) {
            if (deadline_ms > 0) {
                // Nothing became ready: spend one deadline window on
                // the oldest outstanding job (waitFor helps drain
                // the queue, so this is also the loop's worker
                // role).  A miss is a typed failure, not a wedge.
                std::size_t oldest = 0;
                while (emitted[oldest])
                    ++oldest;
                try {
                    const auto result = service.waitFor(
                        handles[oldest],
                        std::chrono::milliseconds(deadline_ms));
                    if (result) {
                        result->writeJson(std::cout,
                                          top > 0 ? top : -1);
                        std::cout.flush();
                    } else {
                        std::fprintf(
                            stderr,
                            "hammer_cli: --serve job %llu: timed "
                            "out after %d ms\n",
                            static_cast<unsigned long long>(
                                handles[oldest].id()),
                            deadline_ms);
                        ++failures;
                    }
                } catch (const std::exception &error) {
                    std::fprintf(stderr,
                                 "hammer_cli: --serve job %llu: %s\n",
                                 static_cast<unsigned long long>(
                                     handles[oldest].id()),
                                 error.what());
                    ++failures;
                }
                emitted[oldest] = true;
                --remaining;
            } else if (!service.helpDrain()) {
                // Act as the pool's extra worker before sleeping:
                // with N requested threads, N-1 are dedicated
                // workers and this streaming loop is the Nth.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        }
    }

    const ServiceStats stats = service.stats();
    std::fprintf(
        stderr,
        "hammer_cli: served %llu job(s) on %d worker(s): "
        "%llu executed, %llu coalesced, %llu cache hit(s) "
        "(hit rate %.2f), %llu exec result(s) shared, "
        "peak queue depth %llu\n",
        static_cast<unsigned long long>(stats.submitted),
        service.workers(),
        static_cast<unsigned long long>(stats.executeRuns),
        static_cast<unsigned long long>(stats.coalesced),
        static_cast<unsigned long long>(stats.resultCache.hits),
        stats.resultCache.hitRate(),
        static_cast<unsigned long long>(stats.executeShared),
        static_cast<unsigned long long>(stats.queuePeakDepth));
    std::fprintf(stderr, "%s\n",
                 serviceStatsJson(stats, service.workers()).c_str());
    return failures == 0 ? 0 : 1;
}

/**
 * --serve --shards: route the spec lines across a shard fleet and
 * merge results in submit order.  Lines travel verbatim, so a
 * shard's parse is byte-identical to the local serve() path's.
 */
int
serveShards(std::istream &input,
            const std::vector<std::string> &addresses, bool canonical,
            int retry_budget, bool degraded_ok)
{
    using namespace hammer;

    std::vector<std::string> lines;
    std::string line;
    int line_number = 0;
    std::vector<int> line_numbers;
    while (std::getline(input, line)) {
        ++line_number;
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        lines.push_back(line);
        line_numbers.push_back(line_number);
    }

    net::ShardRouterOptions options;
    options.addresses = addresses;
    options.heartbeatIntervalMs = 500;
    if (retry_budget > 0) {
        options.retryBudget = true;
        options.retryBudgetOptions.initialTokens = retry_budget;
        options.retryBudgetOptions.maxTokens =
            std::max<double>(retry_budget,
                             options.retryBudgetOptions.maxTokens);
    }
    if (degraded_ok)
        // Per-shard circuit breakers: a flapping or dead shard is
        // skipped after 3 consecutive failures, and a fleet with
        // every breaker open fails fast (breaker_open) instead of
        // burning the full attempt budget per job.
        options.breakerFailureThreshold = 3;
    net::ShardRouter router{options};

    std::vector<std::uint64_t> ids;
    ids.reserve(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        try {
            ids.push_back(router.submit(lines[i]));
        } catch (const std::exception &error) {
            std::fprintf(stderr,
                         "hammer_cli: --serve line %d: %s\n",
                         line_numbers[i], error.what());
            return 2;
        }
    }

    int failures = 0;
    for (const std::uint64_t id : ids) {
        try {
            const std::string json = router.wait(id);
            if (canonical)
                std::cout << api::canonicalResultJson(json) << '\n';
            else
                std::cout << json; // writeJson lines end with '\n'.
        } catch (const std::exception &error) {
            std::fprintf(stderr, "hammer_cli: --serve job %llu: %s\n",
                         static_cast<unsigned long long>(id),
                         error.what());
            ++failures;
        }
    }
    std::cout.flush();

    // One service_stats line per shard (same scrape format the local
    // path emits), then the router's own routing summary.
    for (std::size_t i = 0; i < router.shardCount(); ++i) {
        try {
            std::fprintf(stderr, "%s\n",
                         router.fetchStats(i).c_str());
        } catch (const std::exception &error) {
            std::fprintf(stderr,
                         "hammer_cli: shard %zu stats: %s\n", i,
                         error.what());
        }
    }
    const net::RouterStats stats = router.stats();
    std::fprintf(
        stderr,
        "hammer_cli: routed %llu job(s) across %zu shard(s): "
        "%llu dispatched, %llu retried, %llu rerouted, "
        "%llu shard death(s)\n",
        static_cast<unsigned long long>(stats.submitted),
        router.shardCount(),
        static_cast<unsigned long long>(stats.dispatched),
        static_cast<unsigned long long>(stats.retries),
        static_cast<unsigned long long>(stats.reroutes),
        static_cast<unsigned long long>(stats.shardDeaths));
    return failures == 0 ? 0 : 1;
}

volatile std::sig_atomic_t g_shard_signal = 0;

void
shardSignalHandler(int)
{
    g_shard_signal = 1;
}

/**
 * --shard --listen: one shard worker process.  run() executes on a
 * helper thread so the main thread can watch for SIGTERM/SIGINT with
 * nothing but a sig_atomic_t flag — stop() takes locks, which a
 * signal handler must never do.
 */
int
runShard(const std::string &listen, int threads, int retry_budget,
         bool degraded_ok)
{
    using namespace hammer;

    net::ShardWorkerOptions options;
    options.service.workers = threads;
    options.service.driftWindow = 64;
    if (retry_budget > 0) {
        options.service.retryBudget = true;
        options.service.retryBudgetOptions.initialTokens =
            retry_budget;
        options.service.retryBudgetOptions.maxTokens =
            std::max<double>(
                retry_budget,
                options.service.retryBudgetOptions.maxTokens);
    }
    options.service.degradedServing = degraded_ok;
    options.emitStats = true;
    try {
        net::ShardWorker worker(listen, options);
        std::fprintf(stderr, "hammer_cli: shard listening on %s\n",
                     worker.address().c_str());
        std::signal(SIGTERM, shardSignalHandler);
        std::signal(SIGINT, shardSignalHandler);

        std::atomic<bool> done{false};
        std::thread runner([&] {
            worker.run();
            done.store(true);
        });
        while (!done.load() && g_shard_signal == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        worker.stop();
        runner.join();
    } catch (const std::exception &error) {
        std::fprintf(stderr, "hammer_cli: --shard: %s\n",
                     error.what());
        return 2;
    }
    return 0;
}

/** Split a comma-separated address list (empty items rejected). */
std::vector<std::string>
splitAddresses(const std::string &csv)
{
    std::vector<std::string> addresses;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        const std::string item = csv.substr(start, comma - start);
        if (item.empty()) {
            std::fprintf(stderr,
                         "hammer_cli: --shards: empty address in "
                         "'%s'\n", csv.c_str());
            std::exit(2);
        }
        addresses.push_back(item);
        start = comma + 1;
    }
    return addresses;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hammer;

    core::HammerConfig config;
    bool fast = false;
    bool print_stats = false;
    int iterations = 1;
    int top = -1;
    std::string format = "csv";
    std::string mitigation_spec;

    std::string sample_spec;
    std::string backend = "trajectory";
    bool explain_plan = false;
    api::BackendSpec backend_spec;
    backend_spec.machine = "machineA";
    bool print_time = false;

    std::string serve_path;
    bool serve_mode = false;
    int serve_deadline_ms = 0;
    int retry_budget = 0;
    bool degraded_ok = false;
    bool canonical = false;
    std::string shards_csv;
    bool shard_mode = false;
    std::string listen_address;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "hammer_cli: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--radius") {
            config.maxDistance =
                parsePositiveInt(next_value("--radius"), "--radius");
        } else if (arg == "--no-filter") {
            config.filterLowerProbability = false;
        } else if (arg == "--weights") {
            const std::string scheme = next_value("--weights");
            if (scheme == "inverse-chs") {
                config.weightScheme = core::WeightScheme::InverseChs;
            } else if (scheme == "uniform") {
                config.weightScheme = core::WeightScheme::Uniform;
            } else if (scheme == "inverse-binomial") {
                config.weightScheme =
                    core::WeightScheme::InverseBinomial;
            } else {
                std::fprintf(stderr,
                             "hammer_cli: unknown weight scheme "
                             "'%s'\n", scheme.c_str());
                return 2;
            }
        } else if (arg == "--additive") {
            config.scoreCombine = core::ScoreCombine::Additive;
        } else if (arg == "--iterations") {
            iterations = parsePositiveInt(
                next_value("--iterations"), "--iterations");
        } else if (arg == "--fast") {
            fast = true;
        } else if (arg == "--mitigation") {
            mitigation_spec = next_value("--mitigation");
        } else if (arg == "--top") {
            top = parsePositiveInt(next_value("--top"), "--top");
        } else if (arg == "--stats") {
            print_stats = true;
        } else if (arg == "--format") {
            format = next_value("--format");
            if (format != "csv" && format != "json") {
                std::fprintf(stderr,
                             "hammer_cli: unknown format '%s' "
                             "(csv | json)\n", format.c_str());
                return 2;
            }
        } else if (arg == "--sample") {
            sample_spec = next_value("--sample");
        } else if (arg == "--explain-plan") {
            explain_plan = true;
        } else if (arg == "--calibration") {
            const char *path = next_value("--calibration");
            try {
                plan::setActiveCalibration(
                    api::loadCalibrationFile(path));
            } catch (const std::exception &error) {
                std::fprintf(stderr,
                             "hammer_cli: --calibration %s: %s\n",
                             path, error.what());
                return 2;
            }
        } else if (arg == "--serve") {
            serve_mode = true;
            serve_path = next_value("--serve");
        } else if (arg == "--deadline") {
            serve_deadline_ms = parsePositiveInt(
                next_value("--deadline"), "--deadline");
        } else if (arg == "--retry-budget") {
            retry_budget = parsePositiveInt(
                next_value("--retry-budget"), "--retry-budget");
        } else if (arg == "--degraded-ok") {
            degraded_ok = true;
        } else if (arg == "--canonical") {
            canonical = true;
        } else if (arg == "--shards") {
            shards_csv = next_value("--shards");
        } else if (arg == "--shard") {
            shard_mode = true;
        } else if (arg == "--listen") {
            listen_address = next_value("--listen");
        } else if (arg == "--kernels") {
            return printKernels();
        } else if (arg == "--list") {
            return listRegistry(next_value("--list"));
        } else if (arg == "--machine") {
            backend_spec.machine = next_value("--machine");
        } else if (arg == "--backend") {
            backend = next_value("--backend");
        } else if (arg == "--shots") {
            backend_spec.shots =
                parsePositiveInt(next_value("--shots"), "--shots");
        } else if (arg == "--trajectories") {
            backend_spec.trajectories = parsePositiveInt(
                next_value("--trajectories"), "--trajectories");
        } else if (arg == "--threads") {
            backend_spec.threads = parsePositiveInt(
                next_value("--threads"), "--threads");
        } else if (arg == "--seed") {
            backend_spec.seed =
                static_cast<std::uint64_t>(parsePositiveInt(
                    next_value("--seed"), "--seed"));
        } else if (arg == "--time") {
            print_time = true;
        } else {
            std::fprintf(stderr, "hammer_cli: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }

    if (shard_mode) {
        if (listen_address.empty()) {
            std::fprintf(stderr,
                         "hammer_cli: --shard needs --listen "
                         "<addr>\n");
            return 2;
        }
        return runShard(listen_address, backend_spec.threads,
                        retry_budget, degraded_ok);
    }

    if (serve_mode) {
        std::ifstream file;
        std::istream *input = &std::cin;
        if (serve_path != "-") {
            file.open(serve_path);
            if (!file) {
                std::fprintf(
                    stderr,
                    "hammer_cli: --serve: cannot open '%s'\n",
                    serve_path.c_str());
                return 2;
            }
            input = &file;
        }
        if (!shards_csv.empty())
            return serveShards(*input, splitAddresses(shards_csv),
                               canonical, retry_budget, degraded_ok);
        return serve(*input, backend_spec.threads, top,
                     serve_deadline_ms, canonical, retry_budget,
                     degraded_ok);
    }

    try {
        // The post-processing chain: an explicit --mitigation spec
        // wins; otherwise one HAMMER stage with the reconstruction
        // flags above.
        std::shared_ptr<const api::Mitigator> chain;
        if (!mitigation_spec.empty()) {
            chain = std::make_shared<api::MitigationChain>(
                api::mitigationChainFromSpec(mitigation_spec));
        } else {
            chain = std::make_shared<api::HammerMitigator>(
                config, iterations, fast);
        }

        api::Result result;
        if (explain_plan) {
            if (sample_spec.empty()) {
                std::fprintf(stderr,
                             "hammer_cli: --explain-plan needs "
                             "--sample <spec>\n");
                return 2;
            }
            api::ExperimentSpec spec;
            spec.workload = sample_spec;
            spec.backend = backend;
            spec.backendSpec = backend_spec;
            std::fputs(api::explainPlan(spec).c_str(), stdout);
            return 0;
        }
        if (!sample_spec.empty()) {
            // Self-contained demo path: one pipeline run.
            api::ExperimentSpec spec;
            spec.workload = sample_spec;
            spec.backend = backend;
            spec.backendSpec = backend_spec;
            spec.mitigator = chain;
            result = api::Pipeline().run(spec);

            if (result.workload && result.family == "bv") {
                std::fprintf(
                    stderr, "hammer_cli: BV-%d key %s\n",
                    result.measuredQubits,
                    common::toBitstring(result.workload->key,
                                        result.measuredQubits)
                        .c_str());
            }
            if (print_time) {
                // "up to": the engine caps workers at its work-item
                // count, which can be below the request.
                const int requested = backend_spec.threads > 0
                    ? backend_spec.threads
                    : common::ThreadPool::defaultThreadCount();
                std::fprintf(stderr,
                             "hammer_cli: sampled %d shots on up to "
                             "%d thread(s) in %.3f s\n",
                             result.shots, requested,
                             result.stageSeconds("sample"));
            }
        } else {
            // Adoption path: post-process an external histogram.
            const core::Distribution measured =
                core::readDistributionCsv(std::cin);
            result.label = "stdin";
            result.workloadSpec = "-";
            result.family = "external";
            result.backendName = "external";
            result.machine = backend_spec.machine;
            result.mitigationName = chain->name();
            result.measuredQubits = measured.numBits();
            result.raw = measured;
            // External histograms carry no success predicate: keep
            // the metric fields NaN (null in JSON) rather than a
            // misleading 0.
            const double nan =
                std::numeric_limits<double>::quiet_NaN();
            result.pstRaw = result.pstMitigated = nan;
            result.istRaw = result.istMitigated = nan;
            result.ehdRaw = result.ehdMitigated = nan;

            api::MitigationContext ctx;
            ctx.model = noise::machinePreset(backend_spec.machine);
            ctx.stats = &result.hammerStats;
            const auto start = std::chrono::steady_clock::now();
            result.mitigated = chain->apply(measured, ctx);
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            result.timings.push_back({"mitigate", elapsed.count()});
        }

        if (print_stats) {
            std::fprintf(stderr,
                         "unique outcomes : %zu\n"
                         "max distance    : %d\n"
                         "pair operations : %llu (per pass)\n",
                         result.hammerStats.uniqueOutcomes,
                         result.hammerStats.maxDistance,
                         static_cast<unsigned long long>(
                             result.hammerStats.pairOperations));
        }

        emit(result, format, top);
    } catch (const std::invalid_argument &error) {
        std::fprintf(stderr, "hammer_cli: %s\n", error.what());
        return 2;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "hammer_cli: %s\n", error.what());
        return 1;
    }
    return 0;
}
