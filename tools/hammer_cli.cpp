/**
 * @file
 * hammer_cli — apply Hamming Reconstruction to a histogram file.
 *
 * Usage:
 *   hammer_cli [options] < input.csv > output.csv
 *
 * Input/output format: CSV lines `bitstring,count-or-probability`
 * (the format core/io.hpp reads and writes).  This is the adoption
 * path for users whose measurement data comes from real hardware or
 * another stack: no linking against the library required.
 *
 * Options:
 *   --radius <d>       neighbourhood bound (default: floor((n-1)/2))
 *   --no-filter        disable the lower-probability filter pi
 *   --weights <w>      inverse-chs | uniform | inverse-binomial
 *   --additive         additive score combination (default:
 *                      multiplicative)
 *   --iterations <k>   apply the reconstruction k times (default 1)
 *   --fast             use the popcount-pruned implementation
 *   --top <k>          print only the k most probable outcomes
 *   --stats            print reconstruction statistics to stderr
 *   --help             this text
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/hammer.hpp"
#include "core/io.hpp"

namespace {

[[noreturn]] void
usage(int exit_code)
{
    std::fprintf(
        exit_code == 0 ? stdout : stderr,
        "usage: hammer_cli [options] < histogram.csv > out.csv\n"
        "  --radius <d>      neighbourhood bound "
        "(default floor((n-1)/2))\n"
        "  --no-filter       disable the lower-probability filter\n"
        "  --weights <w>     inverse-chs | uniform | "
        "inverse-binomial\n"
        "  --additive        additive score combination\n"
        "  --iterations <k>  apply reconstruction k times\n"
        "  --fast            popcount-pruned implementation\n"
        "  --top <k>         emit only the k most probable outcomes\n"
        "  --stats           reconstruction statistics on stderr\n");
    std::exit(exit_code);
}

int
parsePositiveInt(const char *text, const char *flag)
{
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value <= 0) {
        std::fprintf(stderr, "hammer_cli: bad value for %s: '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return static_cast<int>(value);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hammer;

    core::HammerConfig config;
    bool fast = false;
    bool print_stats = false;
    int iterations = 1;
    int top = -1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "hammer_cli: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--radius") {
            config.maxDistance =
                parsePositiveInt(next_value("--radius"), "--radius");
        } else if (arg == "--no-filter") {
            config.filterLowerProbability = false;
        } else if (arg == "--weights") {
            const std::string scheme = next_value("--weights");
            if (scheme == "inverse-chs") {
                config.weightScheme = core::WeightScheme::InverseChs;
            } else if (scheme == "uniform") {
                config.weightScheme = core::WeightScheme::Uniform;
            } else if (scheme == "inverse-binomial") {
                config.weightScheme =
                    core::WeightScheme::InverseBinomial;
            } else {
                std::fprintf(stderr,
                             "hammer_cli: unknown weight scheme "
                             "'%s'\n", scheme.c_str());
                return 2;
            }
        } else if (arg == "--additive") {
            config.scoreCombine = core::ScoreCombine::Additive;
        } else if (arg == "--iterations") {
            iterations = parsePositiveInt(
                next_value("--iterations"), "--iterations");
        } else if (arg == "--fast") {
            fast = true;
        } else if (arg == "--top") {
            top = parsePositiveInt(next_value("--top"), "--top");
        } else if (arg == "--stats") {
            print_stats = true;
        } else {
            std::fprintf(stderr, "hammer_cli: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }

    try {
        core::Distribution dist =
            core::readDistributionCsv(std::cin);

        core::HammerStats stats;
        for (int pass = 0; pass < iterations; ++pass) {
            dist = fast ? core::reconstructFast(dist, config, &stats)
                        : core::reconstruct(dist, config, &stats);
        }

        if (print_stats) {
            std::fprintf(stderr,
                         "unique outcomes : %zu\n"
                         "max distance    : %d\n"
                         "pair operations : %llu (per pass)\n",
                         stats.uniqueOutcomes, stats.maxDistance,
                         static_cast<unsigned long long>(
                             stats.pairOperations));
        }

        if (top > 0) {
            core::Distribution truncated(dist.numBits());
            int emitted = 0;
            for (const auto &e : dist.sortedByProbability()) {
                if (emitted++ >= top)
                    break;
                truncated.set(e.outcome, e.probability);
            }
            core::writeDistributionCsv(std::cout, truncated);
        } else {
            core::writeDistributionCsv(std::cout, dist);
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "hammer_cli: %s\n", error.what());
        return 1;
    }
    return 0;
}
