/**
 * @file
 * hammer_cli — apply Hamming Reconstruction to a histogram.
 *
 * Usage:
 *   hammer_cli [options] < input.csv > output.csv
 *   hammer_cli --sample <spec> [options] > output.csv
 *
 * Input/output format: CSV lines `bitstring,count-or-probability`
 * (the format core/io.hpp reads and writes).  This is the adoption
 * path for users whose measurement data comes from real hardware or
 * another stack: no linking against the library required.
 *
 * With --sample the histogram is produced by the built-in noisy
 * simulator instead of stdin — the self-contained demo path, and the
 * driver for the parallel execution engine (--threads).
 *
 * Reconstruction options:
 *   --radius <d>       neighbourhood bound (default: floor((n-1)/2))
 *   --no-filter        disable the lower-probability filter pi
 *   --weights <w>      inverse-chs | uniform | inverse-binomial
 *   --additive         additive score combination (default:
 *                      multiplicative)
 *   --iterations <k>   apply the reconstruction k times (default 1)
 *   --fast             use the popcount-pruned implementation
 *   --top <k>          print only the k most probable outcomes
 *   --stats            print reconstruction statistics to stderr
 *
 * Sampling options:
 *   --sample <spec>    bv:<n> | ghz:<n> | qaoa:<n>:<p>
 *   --machine <name>   noise preset (default machineA)
 *   --backend <b>      trajectory | channel (default trajectory)
 *   --shots <k>        shot budget (default 8192)
 *   --trajectories <t> noise trajectories (default 250)
 *   --threads <N>      worker threads; results are bit-identical for
 *                      every N (default: HAMMER_THREADS env, else all
 *                      hardware threads)
 *   --seed <s>         RNG seed (default 1)
 *   --time             print sampling wall-clock to stderr
 *   --help             this text
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "circuits/bv.hpp"
#include "circuits/ghz.hpp"
#include "circuits/qaoa_circuit.hpp"
#include "circuits/transpiler.hpp"
#include "common/thread_pool.hpp"
#include "core/hammer.hpp"
#include "core/io.hpp"
#include "graph/generators.hpp"
#include "noise/channel_sampler.hpp"
#include "noise/trajectory_sampler.hpp"

namespace {

[[noreturn]] void
usage(int exit_code)
{
    std::fprintf(
        exit_code == 0 ? stdout : stderr,
        "usage: hammer_cli [options] < histogram.csv > out.csv\n"
        "       hammer_cli --sample <spec> [options] > out.csv\n"
        "reconstruction:\n"
        "  --radius <d>      neighbourhood bound "
        "(default floor((n-1)/2))\n"
        "  --no-filter       disable the lower-probability filter\n"
        "  --weights <w>     inverse-chs | uniform | "
        "inverse-binomial\n"
        "  --additive        additive score combination\n"
        "  --iterations <k>  apply reconstruction k times\n"
        "  --fast            popcount-pruned implementation\n"
        "  --top <k>         emit only the k most probable outcomes\n"
        "  --stats           reconstruction statistics on stderr\n"
        "sampling (instead of reading stdin):\n"
        "  --sample <spec>   bv:<n> | ghz:<n> | qaoa:<n>:<p>\n"
        "  --machine <name>  noise preset (default machineA)\n"
        "  --backend <b>     trajectory | channel "
        "(default trajectory)\n"
        "  --shots <k>       shot budget (default 8192)\n"
        "  --trajectories <t> noise trajectories (default 250)\n"
        "  --threads <N>     worker threads (default: HAMMER_THREADS "
        "env, else all cores); output is bit-identical for every N\n"
        "  --seed <s>        RNG seed (default 1)\n"
        "  --time            sampling wall-clock on stderr\n");
    std::exit(exit_code);
}

int
parsePositiveInt(const char *text, const char *flag)
{
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value <= 0) {
        std::fprintf(stderr, "hammer_cli: bad value for %s: '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return static_cast<int>(value);
}

/** Circuit described by a --sample spec, routed onto a line device. */
struct SampleSpec
{
    hammer::circuits::RoutedCircuit routed;
    int measuredQubits;
};

SampleSpec
parseSampleSpec(const std::string &spec, hammer::common::Rng &rng)
{
    using namespace hammer;
    // Dense state-vector scale: beyond ~24 qubits a single
    // trajectory no longer fits in memory (and Bits{1} << n would
    // overflow long before 64).
    constexpr int kMaxQubits = 24;
    const auto parse_int = [](const std::string &text) {
        return parsePositiveInt(text.c_str(), "--sample");
    };
    const auto check_width = [&spec](int n, int max_width) {
        if (n > max_width) {
            std::fprintf(stderr,
                         "hammer_cli: --sample spec '%s' exceeds the "
                         "%d-qubit simulator limit\n",
                         spec.c_str(), max_width);
            std::exit(2);
        }
    };

    std::vector<std::string> parts;
    std::size_t start = 0;
    for (;;) {
        const std::size_t colon = spec.find(':', start);
        parts.push_back(spec.substr(start, colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }

    if (parts[0] == "bv" && parts.size() == 2) {
        const int n = parse_int(parts[1]);
        check_width(n, kMaxQubits - 1); // + 1 ancilla qubit
        common::Bits key = 0;
        while (key == 0)
            key = rng.uniformInt(common::Bits{1} << n);
        const auto circuit = circuits::bernsteinVazirani(n, key);
        const auto coupling = circuits::CouplingMap::line(n + 1);
        std::fprintf(stderr, "hammer_cli: BV-%d key %s\n", n,
                     common::toBitstring(key, n).c_str());
        return {circuits::transpile(circuit, coupling), n};
    }
    if (parts[0] == "ghz" && parts.size() == 2) {
        const int n = parse_int(parts[1]);
        check_width(n, kMaxQubits);
        const auto circuit = circuits::ghz(n);
        const auto coupling = circuits::CouplingMap::line(n);
        return {circuits::transpile(circuit, coupling), n};
    }
    if (parts[0] == "qaoa" && parts.size() == 3) {
        const int n = parse_int(parts[1]);
        check_width(n, kMaxQubits);
        const int layers = parse_int(parts[2]);
        const auto g = graph::kRegular(n, 3, rng);
        const auto params = circuits::linearRampParams(layers);
        const auto circuit = circuits::qaoaCircuit(g, params);
        const auto coupling = circuits::CouplingMap::line(n);
        return {circuits::transpile(circuit, coupling), n};
    }
    std::fprintf(stderr, "hammer_cli: bad --sample spec '%s'\n",
                 spec.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hammer;

    core::HammerConfig config;
    bool fast = false;
    bool print_stats = false;
    int iterations = 1;
    int top = -1;

    std::string sample_spec;
    std::string machine = "machineA";
    std::string backend = "trajectory";
    int shots = 8192;
    int trajectories = 250;
    int threads = 0;
    std::uint64_t seed = 1;
    bool print_time = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "hammer_cli: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--radius") {
            config.maxDistance =
                parsePositiveInt(next_value("--radius"), "--radius");
        } else if (arg == "--no-filter") {
            config.filterLowerProbability = false;
        } else if (arg == "--weights") {
            const std::string scheme = next_value("--weights");
            if (scheme == "inverse-chs") {
                config.weightScheme = core::WeightScheme::InverseChs;
            } else if (scheme == "uniform") {
                config.weightScheme = core::WeightScheme::Uniform;
            } else if (scheme == "inverse-binomial") {
                config.weightScheme =
                    core::WeightScheme::InverseBinomial;
            } else {
                std::fprintf(stderr,
                             "hammer_cli: unknown weight scheme "
                             "'%s'\n", scheme.c_str());
                return 2;
            }
        } else if (arg == "--additive") {
            config.scoreCombine = core::ScoreCombine::Additive;
        } else if (arg == "--iterations") {
            iterations = parsePositiveInt(
                next_value("--iterations"), "--iterations");
        } else if (arg == "--fast") {
            fast = true;
        } else if (arg == "--top") {
            top = parsePositiveInt(next_value("--top"), "--top");
        } else if (arg == "--stats") {
            print_stats = true;
        } else if (arg == "--sample") {
            sample_spec = next_value("--sample");
        } else if (arg == "--machine") {
            machine = next_value("--machine");
        } else if (arg == "--backend") {
            backend = next_value("--backend");
            if (backend != "trajectory" && backend != "channel") {
                std::fprintf(stderr,
                             "hammer_cli: unknown backend '%s'\n",
                             backend.c_str());
                return 2;
            }
        } else if (arg == "--shots") {
            shots = parsePositiveInt(next_value("--shots"), "--shots");
        } else if (arg == "--trajectories") {
            trajectories = parsePositiveInt(
                next_value("--trajectories"), "--trajectories");
        } else if (arg == "--threads") {
            threads = parsePositiveInt(next_value("--threads"),
                                       "--threads");
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(parsePositiveInt(
                next_value("--seed"), "--seed"));
        } else if (arg == "--time") {
            print_time = true;
        } else {
            std::fprintf(stderr, "hammer_cli: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }

    try {
        core::Distribution dist = [&]() -> core::Distribution {
            if (sample_spec.empty())
                return core::readDistributionCsv(std::cin);

            common::Rng rng(seed);
            const SampleSpec spec = parseSampleSpec(sample_spec, rng);
            const auto model = noise::machinePreset(machine);

            std::unique_ptr<noise::NoisySampler> sampler;
            if (backend == "channel") {
                sampler =
                    std::make_unique<noise::ChannelSampler>(model);
            } else {
                sampler = std::make_unique<noise::TrajectorySampler>(
                    model, trajectories);
            }

            const auto start = std::chrono::steady_clock::now();
            core::Distribution sampled = sampler->sampleBatch(
                spec.routed, spec.measuredQubits, shots, rng, threads);
            if (print_time) {
                const std::chrono::duration<double> elapsed =
                    std::chrono::steady_clock::now() - start;
                // "up to": the engine caps workers at its work-item
                // count, which can be below the request.
                const int requested = threads > 0
                    ? threads
                    : common::ThreadPool::defaultThreadCount();
                std::fprintf(stderr,
                             "hammer_cli: sampled %d shots on up to "
                             "%d thread(s) in %.3f s\n",
                             shots, requested, elapsed.count());
            }
            return sampled;
        }();

        core::HammerStats stats;
        for (int pass = 0; pass < iterations; ++pass) {
            dist = fast ? core::reconstructFast(dist, config, &stats)
                        : core::reconstruct(dist, config, &stats);
        }

        if (print_stats) {
            std::fprintf(stderr,
                         "unique outcomes : %zu\n"
                         "max distance    : %d\n"
                         "pair operations : %llu (per pass)\n",
                         stats.uniqueOutcomes, stats.maxDistance,
                         static_cast<unsigned long long>(
                             stats.pairOperations));
        }

        if (top > 0) {
            core::Distribution truncated(dist.numBits());
            int emitted = 0;
            for (const auto &e : dist.sortedByProbability()) {
                if (emitted++ >= top)
                    break;
                truncated.set(e.outcome, e.probability);
            }
            core::writeDistributionCsv(std::cout, truncated);
        } else {
            core::writeDistributionCsv(std::cout, dist);
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "hammer_cli: %s\n", error.what());
        return 1;
    }
    return 0;
}
