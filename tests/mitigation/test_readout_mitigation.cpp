/**
 * @file
 * Unit tests for the tensored readout-error mitigation baseline.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "mitigation/readout_mitigation.hpp"
#include "noise/readout.hpp"

namespace {

using hammer::common::Bits;
using hammer::core::Distribution;
using hammer::noise::NoiseModel;
using namespace hammer::mitigation;

TEST(ReadoutMitigation, ConfusionProbabilityDiagonal)
{
    const NoiseModel m{0.0, 0.0, 0.02, 0.05};
    // P(read 111 | truth 111) = (1 - 0.05)^3.
    EXPECT_NEAR(confusionProbability(0b111, 0b111, 3, m),
                0.95 * 0.95 * 0.95, 1e-12);
    // P(read 000 | truth 000) = (1 - 0.02)^3.
    EXPECT_NEAR(confusionProbability(0b000, 0b000, 3, m),
                0.98 * 0.98 * 0.98, 1e-12);
}

TEST(ReadoutMitigation, ConfusionProbabilityOffDiagonal)
{
    const NoiseModel m{0.0, 0.0, 0.02, 0.05};
    // truth 10, observed 01: bit0 0->1 (0.02), bit1 1->0 (0.05).
    EXPECT_NEAR(confusionProbability(0b10, 0b01, 2, m), 0.02 * 0.05,
                1e-12);
}

TEST(ReadoutMitigation, ConfusionRowsSumToOne)
{
    const NoiseModel m{0.0, 0.0, 0.03, 0.07};
    for (Bits truth = 0; truth < 8; ++truth) {
        double total = 0.0;
        for (Bits observed = 0; observed < 8; ++observed)
            total += confusionProbability(truth, observed, 3, m);
        EXPECT_NEAR(total, 1.0, 1e-12) << "truth " << truth;
    }
}

TEST(ReadoutMitigation, RecoversCleanDistribution)
{
    // Forward-apply the readout channel, then unfold; the result
    // should be close to the original.
    Distribution clean(4);
    clean.set(0b1111, 0.7);
    clean.set(0b0000, 0.3);
    const NoiseModel m{0.0, 0.0, 0.02, 0.05};
    const Distribution noisy = hammer::noise::applyReadoutChannel(
        clean, m);
    const Distribution recovered = mitigateReadout(noisy, m);
    EXPECT_LT(hammer::metrics::tvd(recovered, clean),
              hammer::metrics::tvd(noisy, clean))
        << "mitigation must move the histogram toward the truth";
    EXPECT_GT(recovered.probability(0b1111), noisy.probability(0b1111));
}

TEST(ReadoutMitigation, NoErrorModelIsIdentity)
{
    Distribution d(3);
    d.set(0b101, 0.6);
    d.set(0b010, 0.4);
    const NoiseModel m{0.0, 0.0, 0.0, 0.0};
    const Distribution out = mitigateReadout(d, m);
    EXPECT_NEAR(out.probability(0b101), 0.6, 1e-9);
    EXPECT_NEAR(out.probability(0b010), 0.4, 1e-9);
}

TEST(ReadoutMitigation, OutputIsNormalisedNonNegative)
{
    Distribution d(4);
    d.set(0b1111, 0.4);
    d.set(0b1110, 0.3);
    d.set(0b0111, 0.2);
    d.set(0b0000, 0.1);
    const NoiseModel m{0.0, 0.0, 0.08, 0.12};
    const Distribution out = mitigateReadout(d, m);
    EXPECT_TRUE(out.normalized(1e-9));
    for (const auto &e : out.entries())
        EXPECT_GE(e.probability, 0.0)
            << "IBU can never go negative (unlike matrix inversion)";
}

TEST(ReadoutMitigation, SharpensPeakAgainstAsymmetricBias)
{
    // All-ones suffers 1->0 relaxation; mitigation should give mass
    // back to the all-ones string.
    Distribution measured(5);
    measured.set(0b11111, 0.50);
    measured.set(0b11110, 0.14);
    measured.set(0b11101, 0.13);
    measured.set(0b01111, 0.12);
    measured.set(0b11011, 0.11);
    const NoiseModel m{0.0, 0.0, 0.01, 0.12};
    const Distribution out = mitigateReadout(measured, m);
    EXPECT_GT(out.probability(0b11111), 0.50);
}

TEST(ReadoutMitigation, MoreIterationsConvergeFurther)
{
    Distribution measured(3);
    measured.set(0b111, 0.6);
    measured.set(0b110, 0.25);
    measured.set(0b101, 0.15);
    const NoiseModel m{0.0, 0.0, 0.05, 0.10};
    ReadoutMitigationOptions few{2}, many{32};
    const double p_few =
        mitigateReadout(measured, m, few).probability(0b111);
    const double p_many =
        mitigateReadout(measured, m, many).probability(0b111);
    EXPECT_GE(p_many, p_few - 1e-9);
}

TEST(ReadoutMitigation, UnfoldingBitIdenticalAcrossThreadCounts)
{
    // Row-chunked response build + Bayesian updates: every output
    // element is computed whole by one worker in a fixed inner-loop
    // order, so the unfolding never depends on the thread count.
    const NoiseModel m{0.0, 0.0, 0.04, 0.06};
    hammer::common::Rng rng(0x0B5);
    Distribution measured(8);
    for (int k = 0; k < 120; ++k)
        measured.add(rng.uniformInt(Bits{1} << 8), 1.0);
    measured.normalize();

    ReadoutMitigationOptions serial;
    serial.threads = 1;
    const Distribution reference = mitigateReadout(measured, m, serial);

    for (int threads : {2, 3, 4}) {
        ReadoutMitigationOptions options;
        options.threads = threads;
        const Distribution out = mitigateReadout(measured, m, options);
        ASSERT_EQ(out.support(), reference.support())
            << threads << " threads";
        for (const auto &e : reference.entries())
            EXPECT_DOUBLE_EQ(e.probability, out.probability(e.outcome))
                << threads << " threads";
    }
}

TEST(ReadoutMitigation, RejectsBadArguments)
{
    Distribution empty(3);
    const NoiseModel m{};
    EXPECT_THROW(mitigateReadout(empty, m), std::invalid_argument);

    Distribution d(3);
    d.set(0, 1.0);
    EXPECT_THROW(mitigateReadout(d, m, ReadoutMitigationOptions{0}),
                 std::invalid_argument);
}

} // namespace
