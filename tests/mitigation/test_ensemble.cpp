/**
 * @file
 * Unit tests for the Ensemble-of-Diverse-Mappings baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/bv.hpp"
#include "circuits/coupling.hpp"
#include "circuits/ghz.hpp"
#include "metrics/metrics.hpp"
#include "mitigation/ensemble.hpp"
#include "noise/channel_sampler.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using hammer::core::Distribution;
using namespace hammer::mitigation;

TEST(Ensemble, DiverseLayoutsArePermutations)
{
    for (int count : {1, 2, 3, 5}) {
        const auto layouts = diverseLayouts(8, count);
        ASSERT_EQ(layouts.size(), static_cast<std::size_t>(count));
        for (const auto &layout : layouts) {
            std::vector<int> sorted = layout;
            std::sort(sorted.begin(), sorted.end());
            for (int q = 0; q < 8; ++q)
                EXPECT_EQ(sorted[static_cast<std::size_t>(q)], q);
        }
    }
}

TEST(Ensemble, DiverseLayoutsAreDistinct)
{
    const auto layouts = diverseLayouts(9, 3);
    EXPECT_NE(layouts[0], layouts[1]);
    EXPECT_NE(layouts[1], layouts[2]);
    EXPECT_NE(layouts[0], layouts[2]);
}

TEST(Ensemble, FirstLayoutIsIdentity)
{
    const auto layouts = diverseLayouts(5, 2);
    for (int q = 0; q < 5; ++q)
        EXPECT_EQ(layouts[0][static_cast<std::size_t>(q)], q);
}

TEST(Ensemble, DiverseLayoutsRejectBadCounts)
{
    EXPECT_THROW(diverseLayouts(4, 0), std::invalid_argument);
    EXPECT_THROW(diverseLayouts(4, 5), std::invalid_argument);
}

TEST(Ensemble, IdealSamplerGivesIdealAnswerUnderAnyMapping)
{
    const auto circuit = hammer::circuits::bernsteinVazirani(5,
                                                             0b10110);
    const auto coupling = hammer::circuits::CouplingMap::line(6);
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("ideal"));
    Rng rng(1);
    const Distribution dist = ensembleSample(
        circuit, coupling, 5, sampler, 6000, rng, {3});
    EXPECT_EQ(dist.support(), 1u);
    EXPECT_NEAR(dist.probability(0b10110), 1.0, 1e-12);
}

TEST(Ensemble, CombinedDistributionIsNormalised)
{
    const auto circuit = hammer::circuits::ghz(6);
    const auto coupling = hammer::circuits::CouplingMap::ring(6);
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("machineB"));
    Rng rng(2);
    const Distribution dist = ensembleSample(
        circuit, coupling, 6, sampler, 9000, rng, {3});
    EXPECT_TRUE(dist.normalized(1e-9));
}

TEST(Ensemble, DecoheresMappingSpecificBurstErrors)
{
    // A burst tied to fixed *physical* bits hits different logical
    // bits under each mapping, so the ensemble dilutes the dominant
    // incorrect outcome relative to a single-mapping run.
    const Bits key = 0b11111111;
    const auto circuit = hammer::circuits::bernsteinVazirani(8, key);
    const auto coupling = hammer::circuits::CouplingMap::ring(9);

    hammer::noise::ChannelParams channel;
    channel.burstPattern = 0b00000110;
    channel.burstProbability = 0.15;
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("machineA"), channel);

    Rng rng_single(3), rng_ensemble(3);
    const auto single_routed = hammer::circuits::transpile(
        circuit, coupling);
    const Distribution single = sampler.sample(
        single_routed, 8, 12000, rng_single);
    const Distribution ensemble = ensembleSample(
        circuit, coupling, 8, sampler, 12000, rng_ensemble, {3});

    // The burst outcome under the identity mapping.
    const Bits burst_outcome = key ^ 0b00000110;
    EXPECT_LT(ensemble.probability(burst_outcome),
              single.probability(burst_outcome));
    EXPECT_GE(hammer::metrics::ist(ensemble, {key}),
              hammer::metrics::ist(single, {key}) * 0.9);
}

TEST(Ensemble, RespectsShotBudgetSplit)
{
    const auto circuit = hammer::circuits::ghz(4);
    const auto coupling = hammer::circuits::CouplingMap::full(4);
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("ideal"));
    Rng rng(4);
    // Uneven split (1000 over 3 mappings) must still work.
    const Distribution dist = ensembleSample(
        circuit, coupling, 4, sampler, 1000, rng, {3});
    EXPECT_TRUE(dist.normalized(1e-9));
}

TEST(Ensemble, RejectsBadArguments)
{
    const auto circuit = hammer::circuits::ghz(4);
    const auto coupling = hammer::circuits::CouplingMap::full(4);
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("ideal"));
    Rng rng(5);
    EXPECT_THROW(ensembleSample(circuit, coupling, 4, sampler, 2, rng,
                                {3}),
                 std::invalid_argument);
    EXPECT_THROW(ensembleSample(circuit, coupling, 4, sampler, 100,
                                rng, {0}),
                 std::invalid_argument);
}

} // namespace
