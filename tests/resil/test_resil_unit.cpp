/**
 * @file
 * hammer::resil unit surface: the CircuitBreaker state machine under
 * a logical clock (no sleeps anywhere), the deterministic jittered
 * backoff schedule, and the clock-free RetryBudget token bucket.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "resil/resil.hpp"

namespace {

using hammer::resil::CircuitBreaker;
using hammer::resil::CircuitBreakerOptions;
using hammer::resil::RetryBudget;
using hammer::resil::RetryBudgetOptions;

using Clock = CircuitBreaker::Clock;

/** Logical-clock helper: a duration of @p ms milliseconds. */
Clock::duration
millis(double ms)
{
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresOnly)
{
    CircuitBreakerOptions options;
    options.failureThreshold = 3;
    CircuitBreaker breaker{options};
    const Clock::time_point t0{};

    // Two failures, a success, two more failures: never three in a
    // row, so the breaker stays closed throughout.
    breaker.onFailure(t0);
    breaker.onFailure(t0);
    breaker.onSuccess();
    breaker.onFailure(t0);
    breaker.onFailure(t0);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    EXPECT_TRUE(breaker.allowRequest(t0));

    breaker.onFailure(t0); // Third consecutive: trips.
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.episodes(), 1);
    EXPECT_FALSE(breaker.allowRequest(t0));
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe)
{
    CircuitBreakerOptions options;
    options.failureThreshold = 1;
    options.backoffBaseMs = 40.0;
    CircuitBreaker breaker{options};
    const Clock::time_point t0{};

    breaker.onFailure(t0);
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::Open);

    const double backoff = breaker.backoffMs(1);
    // Jitter keeps the interval inside [0.5, 1.5) * base.
    EXPECT_GE(backoff, 0.5 * 40.0);
    EXPECT_LT(backoff, 1.5 * 40.0);

    // Before the episode's interval elapses: refused.
    EXPECT_FALSE(breaker.allowRequest(t0 + millis(backoff * 0.5)));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);

    // At the interval: half-open, one probe and only one.
    const Clock::time_point probe_time =
        t0 + millis(backoff) + millis(1);
    EXPECT_TRUE(breaker.allowRequest(probe_time));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
    EXPECT_FALSE(breaker.allowRequest(probe_time));

    // Probe success closes and resets the failure streak.
    breaker.onSuccess();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    EXPECT_TRUE(breaker.allowRequest(probe_time));
}

TEST(CircuitBreaker, ProbeFailureReopensWithLongerEpisode)
{
    CircuitBreakerOptions options;
    options.failureThreshold = 1;
    options.backoffBaseMs = 10.0;
    CircuitBreakerOptions same = options;
    CircuitBreaker breaker{options};
    Clock::time_point now{};

    breaker.onFailure(now);
    EXPECT_EQ(breaker.episodes(), 1);

    // Drive three failed probes; each re-opens with the next episode
    // and a (nominally) doubled backoff.
    for (int episode = 2; episode <= 4; ++episode) {
        now += millis(breaker.backoffMs(episode - 1) + 1);
        ASSERT_TRUE(breaker.allowRequest(now));
        breaker.onFailure(now);
        EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
        EXPECT_EQ(breaker.episodes(), episode);
    }

    // The nominal (pre-jitter) interval doubles per episode, so with
    // jitter in [0.5, 1.5) episode k+2 always waits longer than
    // episode k: 0.5 * 2^(k+1) >= 1.5 * 2^(k-1).
    CircuitBreaker reference{same};
    EXPECT_GT(reference.backoffMs(3), reference.backoffMs(1));
    EXPECT_GT(reference.backoffMs(4), reference.backoffMs(2));
}

TEST(CircuitBreaker, BackoffScheduleIsAPureFunctionOfSeedAndEndpoint)
{
    CircuitBreakerOptions options;
    options.seed = 99;
    options.endpoint = 3;
    options.backoffBaseMs = 25.0;
    const CircuitBreaker first{options};
    const CircuitBreaker second{options};
    for (int episode = 1; episode <= 8; ++episode)
        EXPECT_EQ(first.backoffMs(episode),
                  second.backoffMs(episode))
            << "episode " << episode;

    // A different endpoint (same seed) draws a different jitter
    // stream somewhere in the schedule.
    options.endpoint = 4;
    const CircuitBreaker other{options};
    bool any_different = false;
    for (int episode = 1; episode <= 8; ++episode)
        any_different |= first.backoffMs(episode) !=
                         other.backoffMs(episode);
    EXPECT_TRUE(any_different);
}

TEST(CircuitBreaker, BackoffDoublingIsCapped)
{
    CircuitBreakerOptions options;
    options.backoffBaseMs = 10.0;
    options.maxBackoffDoublings = 2;
    const CircuitBreaker breaker{options};
    // Episodes beyond the cap keep the capped nominal interval; only
    // jitter (bounded by 1.5x) differs.
    for (int episode = 3; episode <= 10; ++episode) {
        EXPECT_LT(breaker.backoffMs(episode), 1.5 * 10.0 * 4);
        EXPECT_GE(breaker.backoffMs(episode), 0.5 * 10.0 * 4);
    }
}

TEST(CircuitBreaker, ZeroBackoffIsSequenceDriven)
{
    CircuitBreakerOptions options;
    options.failureThreshold = 1;
    options.backoffBaseMs = 0.0;
    CircuitBreaker breaker{options};
    const Clock::time_point t0{};

    // With a zero base the open interval elapses immediately: the
    // very next allowRequest at the *same* logical instant admits
    // the half-open probe.  This is what replay-determinism tests
    // rely on — no wall-clock dependence anywhere.
    breaker.onFailure(t0);
    EXPECT_TRUE(breaker.allowRequest(t0));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
    breaker.onFailure(t0);
    EXPECT_EQ(breaker.episodes(), 2);
    EXPECT_TRUE(breaker.allowRequest(t0));
}

TEST(RetryBudget, WithdrawalsDenyWhenDry)
{
    RetryBudgetOptions options;
    options.initialTokens = 2.0;
    options.tokensPerDeposit = 0.0;
    options.tokensPerRetry = 1.0;
    RetryBudget budget{options};

    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_FALSE(budget.tryWithdraw());
    EXPECT_FALSE(budget.tryWithdraw());
    EXPECT_EQ(budget.denied(), 2u);
    EXPECT_EQ(budget.tokens(), 0.0);
}

TEST(RetryBudget, DepositsRefillAndSaturate)
{
    RetryBudgetOptions options;
    options.initialTokens = 0.0;
    options.tokensPerDeposit = 0.5;
    options.maxTokens = 1.0;
    options.tokensPerRetry = 1.0;
    RetryBudget budget{options};

    EXPECT_FALSE(budget.tryWithdraw());
    budget.deposit();
    EXPECT_FALSE(budget.tryWithdraw()) << "0.5 < 1 token";
    budget.deposit();
    EXPECT_TRUE(budget.tryWithdraw());

    // Saturation: a long healthy streak cannot bank more than
    // maxTokens worth of future retries.
    for (int i = 0; i < 100; ++i)
        budget.deposit();
    EXPECT_EQ(budget.tokens(), 1.0);
    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_FALSE(budget.tryWithdraw());
}

TEST(RetryBudget, DeterministicAcrossIdenticalSequences)
{
    const auto drive = [] {
        RetryBudgetOptions options;
        options.initialTokens = 3.0;
        options.tokensPerDeposit = 0.25;
        RetryBudget budget{options};
        std::uint64_t granted = 0;
        for (int i = 0; i < 64; ++i) {
            budget.deposit();
            if (i % 3 == 0 && budget.tryWithdraw())
                ++granted;
        }
        return std::make_pair(granted, budget.denied());
    };
    EXPECT_EQ(drive(), drive());
}

} // namespace
