/**
 * @file
 * ExecutionService resilience policies: deadline-aware admission and
 * load shedding (including the ShedDecision chaos seam), degraded
 * serving from cached lower-budget results (always explicitly
 * flagged, never silent), per-key-class retry budgets, the
 * calibration-drift alert counter, and shutdown() racing concurrent
 * submit/waitFor at 1/2/4 workers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/service.hpp"
#include "chaos/fault_plan.hpp"
#include "resil/resil.hpp"

namespace {

using hammer::api::DeadlineInfeasibleError;
using hammer::api::ExecutionService;
using hammer::api::ExecutionServiceOptions;
using hammer::api::ExperimentSpec;
using hammer::api::Result;
using hammer::api::ServiceShutdownError;
using hammer::api::ServiceStats;
using hammer::api::serviceStatsJson;
using hammer::chaos::FaultPlan;
using hammer::chaos::FaultPlanOptions;
using hammer::resil::RetryBudgetExhaustedError;

ExperimentSpec
spec(std::uint64_t seed, int trajectories = 10)
{
    ExperimentSpec s;
    s.workload = "bv:5";
    s.backend = "trajectory";
    s.backendSpec.shots = 64;
    s.backendSpec.trajectories = trajectories;
    s.backendSpec.seed = seed;
    return s;
}

TEST(ServiceAdmission, InfeasibleDeadlineShedsBeforeExecution)
{
    ExecutionServiceOptions options;
    options.workers = 1;
    ExecutionService service{options};

    // A deadline of 1e-7 ms is below any workload's predicted cost:
    // the job is shed at submit(), before any compute is spent.
    try {
        service.submit(spec(1), 0, 1e-7);
        FAIL() << "expected DeadlineInfeasibleError";
    } catch (const DeadlineInfeasibleError &error) {
        EXPECT_GT(error.predictedMs(), 0.0);
        EXPECT_EQ(error.deadlineMs(), 1e-7);
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.deadlineRejections, 1u);
    EXPECT_EQ(stats.shedForced, 0u);
    EXPECT_EQ(stats.submitted, 0u) << "shed jobs are not admitted";
    EXPECT_EQ(stats.executeRuns, 0u);
}

TEST(ServiceAdmission, GenerousDeadlineAdmitsAndCompletes)
{
    ExecutionServiceOptions options;
    options.workers = 1;
    ExecutionService service{options};

    const Result result =
        service.wait(service.submit(spec(2), 0, 1e9));
    EXPECT_EQ(result.shots, 64);
    EXPECT_FALSE(result.degraded);
    EXPECT_EQ(service.stats().deadlineRejections, 0u);
}

TEST(ServiceAdmission, CacheHitsAreNeverShed)
{
    ExecutionServiceOptions options;
    options.workers = 1;
    ExecutionService service{options};

    // Warm the result cache, then re-submit the identical spec with
    // an impossible deadline: a cache hit costs nothing, so the
    // admission rule must not shed it.
    service.wait(service.submit(spec(3)));
    const Result hit =
        service.wait(service.submit(spec(3), 0, 1e-7));
    EXPECT_EQ(hit.shots, 64);
    EXPECT_FALSE(hit.degraded);
    EXPECT_EQ(service.stats().deadlineRejections, 0u);
}

TEST(ServiceAdmission, ChaosSeamForcesShedsDeterministically)
{
    FaultPlanOptions faults;
    faults.shedForceRate = 1.0;

    ExecutionServiceOptions options;
    options.workers = 1;
    options.faultInjector = std::make_shared<FaultPlan>(11, faults);
    ExecutionService service{options};

    // No deadline at all — the seam alone forces the shed, and the
    // error's deadlineMs() is 0 to mark the chaos-forced case.
    try {
        service.submit(spec(4));
        FAIL() << "expected DeadlineInfeasibleError";
    } catch (const DeadlineInfeasibleError &error) {
        EXPECT_EQ(error.deadlineMs(), 0.0);
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.shedForced, 1u);
    EXPECT_EQ(stats.deadlineRejections, 1u);
}

TEST(ServiceDegraded, ServesCachedLowerBudgetExplicitlyFlagged)
{
    ExecutionServiceOptions options;
    options.workers = 1;
    options.degradedServing = true;
    ExecutionService service{options};

    // Warm the cache with a 10-trajectory run of the same spec
    // family, then ask for 40 trajectories under an impossible
    // deadline: instead of shedding, the service answers with the
    // cached lower-budget result, explicitly flagged.
    const Result small = service.wait(service.submit(spec(5, 10)));
    const Result degraded =
        service.wait(service.submit(spec(5, 40), 0, 1e-7));

    EXPECT_TRUE(degraded.degraded);
    EXPECT_FALSE(small.degraded);
    ASSERT_EQ(degraded.mitigated.entries().size(),
              small.mitigated.entries().size());
    for (std::size_t i = 0; i < small.mitigated.entries().size();
         ++i) {
        EXPECT_EQ(degraded.mitigated.entries()[i].outcome,
                  small.mitigated.entries()[i].outcome);
        EXPECT_EQ(degraded.mitigated.entries()[i].probability,
                  small.mitigated.entries()[i].probability);
    }

    // The flag survives serialization — and only appears when set.
    EXPECT_NE(degraded.json(-1).find("\"degraded\":true"),
              std::string::npos);
    EXPECT_EQ(small.json(-1).find("degraded"), std::string::npos);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.degradedServed, 1u);
    EXPECT_EQ(stats.deadlineRejections, 0u);

    // The substitute must not have been cached under the requested
    // key: a feasible re-submit of the 40-trajectory spec executes
    // for real and comes back unflagged.
    const Result real = service.wait(service.submit(spec(5, 40)));
    EXPECT_FALSE(real.degraded);
    EXPECT_GT(service.stats().executeRuns, stats.executeRuns);
}

TEST(ServiceDegraded, NeverSubstitutesWhenDisabled)
{
    ExecutionServiceOptions options;
    options.workers = 1;
    ExecutionService service{options}; // degradedServing off

    service.wait(service.submit(spec(6, 10)));
    // Same warm cache, impossible deadline: with degraded serving
    // off the job is shed loudly — a stale answer is never silently
    // substituted.
    EXPECT_THROW(service.submit(spec(6, 40), 0, 1e-7),
                 DeadlineInfeasibleError);
    EXPECT_EQ(service.stats().degradedServed, 0u);
}

TEST(ServiceRetryBudget, ExhaustionFailsTypedInsteadOfRetrying)
{
    FaultPlanOptions faults;
    faults.workerKillRate = 1.0; // Every attempt dies.

    ExecutionServiceOptions options;
    options.workers = 1;
    options.faultInjector = std::make_shared<FaultPlan>(21, faults);
    options.retryBudget = true;
    options.retryBudgetOptions.initialTokens = 0.0;
    options.retryBudgetOptions.tokensPerDeposit = 0.0;
    ExecutionService service{options};

    // The first injected death wants a retry; the dry budget denies
    // it, so the job fails with the typed policy error after exactly
    // one attempt — no unbounded retrying.
    const auto handle = service.submit(spec(7));
    try {
        service.wait(handle);
        FAIL() << "expected RetryBudgetExhaustedError";
    } catch (const RetryBudgetExhaustedError &error) {
        EXPECT_EQ(error.attempts(), 1);
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.retryBudgetExhausted, 1u);
    EXPECT_EQ(stats.retries, 0u);
}

TEST(ServiceRetryBudget, AmpleBudgetStillRetriesToCompletion)
{
    FaultPlanOptions faults;
    faults.workerKillRate = 0.4;

    ExecutionServiceOptions options;
    options.workers = 1;
    options.maxRetries = 8;
    options.faultInjector = std::make_shared<FaultPlan>(22, faults);
    options.retryBudget = true;
    // Explicitly ample: each attempt has two kill points, so a 0.4
    // rate draws ~2 retries per job — provision well clear of that.
    options.retryBudgetOptions.initialTokens = 64.0;
    ExecutionService service{options};

    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const Result result =
            service.wait(service.submit(spec(seed)));
        EXPECT_EQ(result.shots, 64);
    }
    EXPECT_EQ(service.stats().retryBudgetExhausted, 0u);
}

TEST(ServiceDrift, OutOfBandWindowCountsAnAlert)
{
    ExecutionServiceOptions options;
    options.workers = 1;
    options.driftWindow = 1;
    // An impossible band: every window's measured/predicted ratio
    // falls below it, so each completed window raises the alert.
    options.driftBandLow = 1e9;
    options.driftBandHigh = 2e9;
    ExecutionService service{options};

    service.wait(service.submit(spec(8)));
    service.wait(service.submit(spec(9)));
    EXPECT_GE(service.stats().calibrationDriftAlerts, 2u);
}

TEST(ServiceDrift, DisabledWindowNeverAlerts)
{
    ExecutionServiceOptions options;
    options.workers = 1; // driftWindow defaults to 0 = off.
    ExecutionService service{options};
    service.wait(service.submit(spec(10)));
    EXPECT_EQ(service.stats().calibrationDriftAlerts, 0u);
}

TEST(ServiceStatsJson, CarriesTheResilienceCounters)
{
    ExecutionServiceOptions options;
    options.workers = 1;
    ExecutionService service{options};
    service.wait(service.submit(spec(11)));

    const std::string json =
        serviceStatsJson(service.stats(), service.workers());
    for (const char *key :
         {"\"deadline_rejections\"", "\"shed_forced\"",
          "\"degraded_served\"", "\"retry_budget_exhausted\"",
          "\"calibration_drift_alerts\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

/**
 * shutdown() racing concurrent submit/waitFor: every racing submit
 * either completes normally or throws ServiceShutdownError — never a
 * hang, never a torn Result — and the drain invariant
 * (completed + coalesced == submitted) holds at the end.
 */
void
shutdownRace(int workers)
{
    ExecutionServiceOptions options;
    options.workers = workers;
    auto service = std::make_unique<ExecutionService>(options);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 6;
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < kPerThread; ++i) {
                try {
                    const auto handle = service->submit(
                        spec(1 + t * kPerThread + i, 5));
                    // waitFor exercises the timed path under the
                    // same race; accepted jobs must still drain.
                    auto result = service->waitFor(
                        handle, std::chrono::seconds(60));
                    EXPECT_TRUE(result.has_value());
                    if (result) {
                        EXPECT_EQ(result->shots, 64);
                    }
                    ++accepted;
                } catch (const ServiceShutdownError &) {
                    ++rejected;
                }
            }
        });
    }
    go.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    service->shutdown();
    for (auto &thread : submitters)
        thread.join();

    const ServiceStats stats = service->stats();
    EXPECT_EQ(accepted.load() + rejected.load(),
              kThreads * kPerThread);
    EXPECT_EQ(stats.completed + stats.coalesced, stats.submitted)
        << "drain invariant after shutdown";
    EXPECT_EQ(stats.shutdownRejections,
              static_cast<std::uint64_t>(rejected.load()));
}

TEST(ServiceShutdownRace, OneWorker) { shutdownRace(1); }
TEST(ServiceShutdownRace, TwoWorkers) { shutdownRace(2); }
TEST(ServiceShutdownRace, FourWorkers) { shutdownRace(4); }

} // namespace
