/**
 * @file
 * ShardRouter resilience policies over a real in-process fleet:
 * bounded affinity LRU, per-shard circuit breakers (fast-fail when
 * every breaker is open), the global retry budget, degraded local
 * fallback in the remote backend, and the kill-and-flap replay
 * campaign — same seed, bit-identical results and policy counters.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/pipeline.hpp"
#include "api/service.hpp"
#include "chaos/fault_plan.hpp"
#include "net/remote_backend.hpp"
#include "net/router.hpp"
#include "net/shard_worker.hpp"
#include "resil/resil.hpp"

namespace {

using hammer::api::canonicalResultJson;
using hammer::api::ExecutionService;
using hammer::api::ExecutionServiceOptions;
using hammer::api::parseSpecLine;
using hammer::api::Result;
using hammer::api::SpecLine;
using hammer::chaos::FaultPlan;
using hammer::chaos::FaultPlanOptions;
using hammer::net::BreakerOpenError;
using hammer::net::RouterStats;
using hammer::net::ShardRouter;
using hammer::net::ShardRouterOptions;
using hammer::net::ShardWorker;
using hammer::net::ShardWorkerOptions;
using hammer::resil::RetryBudgetExhaustedError;

/** N in-process shard workers on Unix sockets in a fresh temp dir. */
class Fleet
{
  public:
    explicit Fleet(int count)
    {
        char tmpl[] = "/tmp/hammer_resil_XXXXXX";
        const char *dir = ::mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        dir_ = dir;
        for (int i = 0; i < count; ++i) {
            workers_.push_back(std::make_unique<ShardWorker>(
                "unix:" + dir_ + "/s" + std::to_string(i) +
                    ".sock",
                ShardWorkerOptions{}));
            threads_.emplace_back(
                [worker = workers_.back().get()] {
                    worker->run();
                });
        }
    }

    ~Fleet()
    {
        for (auto &worker : workers_)
            worker->stop();
        for (auto &thread : threads_)
            thread.join();
        ::rmdir(dir_.c_str());
    }

    std::vector<std::string> addresses() const
    {
        std::vector<std::string> out;
        for (const auto &worker : workers_)
            out.push_back(worker->address());
        return out;
    }

  private:
    std::string dir_;
    std::vector<std::unique_ptr<ShardWorker>> workers_;
    std::vector<std::thread> threads_;
};

/** A campaign with repeats: distinct keys plus affinity traffic. */
std::vector<std::string>
campaignLines()
{
    std::vector<std::string> lines;
    for (int seed = 1; seed <= 4; ++seed) {
        lines.push_back(
            "{\"workload\": \"bv:5\", \"backend\": \"channel\", "
            "\"shots\": 256, \"seed\": " +
            std::to_string(seed) + "}");
        lines.push_back("ghz:4,channel,256," +
                        std::to_string(seed));
    }
    for (int repeat = 0; repeat < 3; ++repeat) {
        lines.push_back("bv:5,channel,256,1");
        lines.push_back("ghz:4,channel,256,2");
    }
    return lines;
}

/** Canonical forms of a local (in-process) run over @p lines. */
std::vector<std::string>
localCanonical(const std::vector<std::string> &lines)
{
    ExecutionServiceOptions options;
    options.workers = 1;
    ExecutionService service{options};
    std::vector<ExecutionService::JobHandle> handles;
    for (const std::string &line : lines) {
        const SpecLine parsed = parseSpecLine(line);
        handles.push_back(
            service.submit(parsed.spec, parsed.priority));
    }
    std::vector<std::string> out;
    for (const auto &handle : handles)
        out.push_back(canonicalResultJson(
            service.wait(handle).json(-1)));
    return out;
}

TEST(RouterAffinity, LruCapBoundsTheMapAndKeepsResultsExact)
{
    const auto lines = campaignLines();
    const auto expected = localCanonical(lines);

    Fleet fleet(2);
    ShardRouterOptions options;
    options.addresses = fleet.addresses();
    // Far fewer slots than distinct exec keys: the map must evict
    // instead of growing, and correctness must not depend on it.
    options.affinityCapacity = 2;
    ShardRouter router{options};

    const auto raw = router.runMany(lines);
    ASSERT_EQ(raw.size(), expected.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
        EXPECT_EQ(canonicalResultJson(raw[i]), expected[i])
            << "line " << i;

    EXPECT_GT(router.stats().affinityEvictions, 0u)
        << "more distinct keys than capacity must evict";
}

TEST(RouterAffinity, CapacityBelowOneIsRejected)
{
    ShardRouterOptions options;
    options.addresses = {"unix:/tmp/never-connected.sock"};
    options.affinityCapacity = 0;
    EXPECT_THROW(ShardRouter{options}, std::invalid_argument);
}

TEST(RouterBreaker, FleetWideOpenFailsFastWithTypedError)
{
    FaultPlanOptions faults;
    faults.shardSendKillRate = 1.0; // Every send attempt dies.

    Fleet fleet(1);
    ShardRouterOptions options;
    options.addresses = fleet.addresses();
    options.faultInjector = std::make_shared<FaultPlan>(5, faults);
    options.breakerFailureThreshold = 1;
    // A long backoff keeps the breaker open for the whole test, so
    // the second submit must fast-fail without a single dispatch.
    options.breakerBackoffBaseMs = 60000.0;
    ShardRouter router{options};

    EXPECT_THROW(router.wait(router.submit("bv:5,channel,128,1")),
                 BreakerOpenError);
    const RouterStats after_first = router.stats();
    EXPECT_GE(after_first.breakerTrips, 1u);
    EXPECT_GE(after_first.breakerFastFails, 1u);

    EXPECT_THROW(router.wait(router.submit("ghz:4,channel,128,1")),
                 BreakerOpenError);
    const RouterStats after_second = router.stats();
    EXPECT_EQ(after_second.breakerFastFails,
              after_first.breakerFastFails + 1);
    EXPECT_EQ(after_second.dispatched, after_first.dispatched)
        << "an open breaker must refuse before any send";
}

TEST(RouterBreaker, RecoveredShardClosesTheBreaker)
{
    FaultPlanOptions faults;
    faults.shardSendKillRate = 1.0;

    Fleet fleet(1);
    ShardRouterOptions options;
    options.addresses = fleet.addresses();
    options.breakerFailureThreshold = 1;
    // Sequence-driven breaker: the open interval elapses
    // immediately, so the next dispatch probes half-open.
    options.breakerBackoffBaseMs = 0.0;
    {
        // First, trip the breaker with a kill-everything plan.
        ShardRouterOptions broken = options;
        broken.faultInjector =
            std::make_shared<FaultPlan>(6, faults);
        broken.maxAttempts = 3;
        ShardRouter router{broken};
        EXPECT_THROW(router.wait(router.submit("bv:5,channel,64,1")),
                     hammer::net::RouterError);
        EXPECT_GE(router.stats().breakerTrips, 1u);
    }
    // A fresh plan-free router over the same (healthy) fleet: after
    // one failure the half-open probe succeeds and traffic flows.
    ShardRouter router{options};
    const auto results =
        router.runMany({"bv:5,channel,64,1", "bv:5,channel,64,1"});
    EXPECT_EQ(results.size(), 2u);
}

TEST(RouterRetryBudget, DryBudgetFailsTypedWithoutRetryStorm)
{
    FaultPlanOptions faults;
    faults.shardSendKillRate = 1.0;

    Fleet fleet(1);
    ShardRouterOptions options;
    options.addresses = fleet.addresses();
    options.faultInjector = std::make_shared<FaultPlan>(7, faults);
    options.retryBudget = true;
    options.retryBudgetOptions.initialTokens = 0.0;
    options.retryBudgetOptions.tokensPerDeposit = 0.0;
    ShardRouter router{options};

    // Attempt 0 is free (not a retry); the injected kill wants
    // attempt 1, which the dry budget denies.
    EXPECT_THROW(router.wait(router.submit("bv:5,channel,64,1")),
                 RetryBudgetExhaustedError);
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.retryBudgetExhausted, 1u);
    EXPECT_EQ(stats.retries, 1u)
        << "exactly one denied retry, no storm";
}

TEST(RemoteBackend, DegradedLocalFallbackWhenEveryBreakerIsOpen)
{
    FaultPlanOptions faults;
    faults.shardSendKillRate = 1.0; // The fleet is unreachable.

    Fleet fleet(1);
    auto router = std::make_shared<ShardRouter>([&] {
        ShardRouterOptions options;
        options.addresses = fleet.addresses();
        options.faultInjector =
            std::make_shared<FaultPlan>(8, faults);
        options.breakerFailureThreshold = 1;
        options.breakerBackoffBaseMs = 60000.0;
        return options;
    }());
    hammer::net::RemoteBackendOptions remote_options;
    remote_options.degradedLocalFallback = true;
    hammer::net::enableRemoteBackend(router, remote_options);

    ExecutionServiceOptions service_options;
    service_options.workers = 1;
    ExecutionService service{service_options};

    hammer::api::ExperimentSpec remote;
    remote.workload = "bv:5";
    remote.backend = "remote";
    remote.backendSpec.serviceBackend = "channel";
    remote.backendSpec.shots = 256;
    remote.backendSpec.seed = 9;

    hammer::api::ExperimentSpec local = remote;
    local.backend = "channel";

    const Result via_remote = service.wait(service.submit(remote));
    const Result via_local = service.wait(service.submit(local));

    // The fallback is explicit — flagged in the struct and in the
    // serialized form — and histogram-identical to a local run of
    // the delegate backend.
    EXPECT_TRUE(via_remote.degraded);
    EXPECT_FALSE(via_local.degraded);
    EXPECT_NE(via_remote.json(-1).find("\"degraded\":true"),
              std::string::npos);
    ASSERT_EQ(via_remote.mitigated.entries().size(),
              via_local.mitigated.entries().size());
    for (std::size_t i = 0;
         i < via_local.mitigated.entries().size(); ++i) {
        EXPECT_EQ(via_remote.mitigated.entries()[i].outcome,
                  via_local.mitigated.entries()[i].outcome);
        EXPECT_EQ(via_remote.mitigated.entries()[i].probability,
                  via_local.mitigated.entries()[i].probability);
    }

    // Degraded results are never cached: a re-submit of the remote
    // spec goes back through the transport (and falls back again)
    // instead of replaying a cached degraded answer.
    const Result again = service.wait(service.submit(remote));
    EXPECT_TRUE(again.degraded);
    EXPECT_EQ(service.stats().resultCache.hits, 0u)
        << "a degraded result must never be served from the cache";

    hammer::net::disableRemoteBackend();
}

TEST(RemoteBackend, NoFallbackWithoutOptInStaysLoud)
{
    FaultPlanOptions faults;
    faults.shardSendKillRate = 1.0;

    Fleet fleet(1);
    auto router = std::make_shared<ShardRouter>([&] {
        ShardRouterOptions options;
        options.addresses = fleet.addresses();
        options.faultInjector =
            std::make_shared<FaultPlan>(10, faults);
        options.breakerFailureThreshold = 1;
        options.breakerBackoffBaseMs = 60000.0;
        return options;
    }());
    hammer::net::enableRemoteBackend(router); // Defaults: no fallback.

    ExecutionServiceOptions service_options;
    service_options.workers = 1;
    ExecutionService service{service_options};

    hammer::api::ExperimentSpec remote;
    remote.workload = "bv:5";
    remote.backend = "remote";
    remote.backendSpec.serviceBackend = "channel";
    remote.backendSpec.shots = 128;
    remote.backendSpec.seed = 2;

    EXPECT_THROW(service.wait(service.submit(remote)),
                 BreakerOpenError);
    hammer::net::disableRemoteBackend();
}

/**
 * The acceptance campaign: kill-and-flap chaos (lost sends plus
 * denied half-open probes) with breakers and retry budgets enabled.
 * Jobs are submitted serially so every policy decision happens on
 * the submitting thread, making the whole run a pure function of
 * the seed: two same-seed runs must produce bit-identical result
 * lines AND bit-identical policy counters, and surviving jobs must
 * match a fault-free local run exactly.
 */
TEST(RouterBreakerChaos, KillAndFlapRepliesBitIdentically)
{
    const auto lines = campaignLines();
    const auto expected = localCanonical(lines);

    struct Capture
    {
        std::vector<std::string> outcomes;
        RouterStats stats;
    };

    const auto run = [&lines]() -> Capture {
        FaultPlanOptions faults;
        faults.shardSendKillRate = 0.25;
        faults.breakerProbeDenyRate = 0.2;

        Fleet fleet(2);
        ShardRouterOptions options;
        options.addresses = fleet.addresses();
        options.faultInjector =
            std::make_shared<FaultPlan>(1337, faults);
        options.breakerFailureThreshold = 1;
        options.breakerBackoffBaseMs = 0.0; // Sequence-driven.
        options.breakerSeed = 1337;
        options.retryBudget = true; // Ample default tokens.
        ShardRouter router{options};

        Capture capture;
        for (const std::string &line : lines) {
            // Serial: one job in flight at a time.
            const std::uint64_t id = router.submit(line);
            try {
                capture.outcomes.push_back(
                    canonicalResultJson(router.wait(id)));
            } catch (const std::exception &error) {
                capture.outcomes.push_back(
                    std::string("<error> ") + error.what());
            }
        }
        capture.stats = router.stats();
        return capture;
    };

    const Capture first = run();
    const Capture second = run();

    ASSERT_EQ(first.outcomes.size(), expected.size());
    std::size_t survivors = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        // Replay: line-for-line identical across same-seed runs.
        EXPECT_EQ(first.outcomes[i], second.outcomes[i])
            << "line " << i;
        if (first.outcomes[i].rfind("<error>", 0) != 0) {
            ++survivors;
            // Survivors are bit-identical to the fault-free run.
            EXPECT_EQ(first.outcomes[i], expected[i])
                << "line " << i;
        }
    }
    EXPECT_GE(survivors, expected.size() / 2)
        << "the policies must keep most of the campaign alive";

    // Every policy counter replays exactly (busySeconds is wall
    // time and deliberately excluded).
    EXPECT_EQ(first.stats.submitted, second.stats.submitted);
    EXPECT_EQ(first.stats.dispatched, second.stats.dispatched);
    EXPECT_EQ(first.stats.retries, second.stats.retries);
    EXPECT_EQ(first.stats.reroutes, second.stats.reroutes);
    EXPECT_EQ(first.stats.shardDeaths, second.stats.shardDeaths);
    EXPECT_EQ(first.stats.recvDropped, second.stats.recvDropped);
    EXPECT_EQ(first.stats.breakerTrips, second.stats.breakerTrips);
    EXPECT_EQ(first.stats.breakerSkips, second.stats.breakerSkips);
    EXPECT_EQ(first.stats.breakerProbes,
              second.stats.breakerProbes);
    EXPECT_EQ(first.stats.breakerProbesDenied,
              second.stats.breakerProbesDenied);
    EXPECT_EQ(first.stats.breakerFastFails,
              second.stats.breakerFastFails);
    EXPECT_EQ(first.stats.retryBudgetExhausted,
              second.stats.retryBudgetExhausted);
    EXPECT_GT(first.stats.breakerTrips, 0u)
        << "the plan must actually trip breakers";
    EXPECT_GT(first.stats.breakerProbes, 0u)
        << "tripped breakers must probe half-open";
}

} // namespace
