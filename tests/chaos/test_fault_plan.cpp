/**
 * @file
 * chaos::FaultPlan: decisions are pure functions of (seed, site,
 * key), rates land where they are pointed, stats count what was
 * injected, hostileSpecLines floods are reproducible, and the
 * ThreadPool PoolJob seam degrades into the pool's defined
 * broken_promise error.
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "common/thread_pool.hpp"

namespace {

using hammer::chaos::FaultPlan;
using hammer::chaos::FaultPlanOptions;
using hammer::chaos::hostileSpecLines;
using hammer::common::FaultAction;
using hammer::common::FaultSite;
using hammer::common::ThreadPool;

FaultPlanOptions
allSitesOptions()
{
    FaultPlanOptions options;
    options.poolKillRate = 0.2;
    options.poolStallRate = 0.2;
    options.workerKillRate = 0.2;
    options.workerStallRate = 0.2;
    options.cachePoisonRate = 0.2;
    options.coalesceDropRate = 0.2;
    options.coalesceDelayRate = 0.2;
    return options;
}

TEST(FaultPlan, DecisionsArePureFunctionsOfSeedSiteKey)
{
    const FaultPlan a(42, allSitesOptions());
    const FaultPlan b(42, allSitesOptions());
    const std::vector<FaultSite> sites = {
        FaultSite::PoolJob, FaultSite::ServiceJob,
        FaultSite::CacheInsert, FaultSite::CoalesceRegister};
    for (const FaultSite site : sites) {
        for (std::uint64_t key = 0; key < 500; ++key) {
            const FaultAction first = a.peek(site, key);
            const FaultAction second = b.peek(site, key);
            EXPECT_EQ(static_cast<int>(first.kind),
                      static_cast<int>(second.kind));
            EXPECT_EQ(first.millis, second.millis);
            // Re-peeking the same plan never drifts: no hidden
            // state advances with the query.
            const FaultAction again = a.peek(site, key);
            EXPECT_EQ(static_cast<int>(first.kind),
                      static_cast<int>(again.kind));
        }
    }
}

TEST(FaultPlan, AtMatchesPeekAndIsVisitOrderIndependent)
{
    FaultPlan forward(7, allSitesOptions());
    FaultPlan backward(7, allSitesOptions());
    for (std::uint64_t key = 0; key < 200; ++key) {
        const FaultAction expected =
            forward.peek(FaultSite::ServiceJob, key);
        const FaultAction acted =
            forward.at(FaultSite::ServiceJob, key);
        EXPECT_EQ(static_cast<int>(expected.kind),
                  static_cast<int>(acted.kind));
    }
    // A racing schedule visits the same keys in another order and
    // still sees identical decisions.
    for (std::uint64_t key = 200; key-- > 0;) {
        const FaultAction a = forward.peek(FaultSite::ServiceJob, key);
        const FaultAction b =
            backward.at(FaultSite::ServiceJob, key);
        EXPECT_EQ(static_cast<int>(a.kind),
                  static_cast<int>(b.kind));
    }
}

TEST(FaultPlan, SeedsSeparateAndRatesLandWhereAimed)
{
    FaultPlanOptions kills;
    kills.workerKillRate = 0.3;
    const FaultPlan plan(11, kills);
    const FaultPlan other(12, kills);

    int killed = 0;
    bool diverged = false;
    const int trials = 2000;
    for (std::uint64_t key = 0; key < trials; ++key) {
        const FaultAction action =
            plan.peek(FaultSite::ServiceJob, key);
        if (action.kind == FaultAction::Kind::Kill)
            ++killed;
        // A 0.3 kill rate never stalls, and other sites stay silent.
        EXPECT_NE(static_cast<int>(action.kind),
                  static_cast<int>(FaultAction::Kind::Stall));
        EXPECT_EQ(static_cast<int>(
                      plan.peek(FaultSite::CacheInsert, key).kind),
                  static_cast<int>(FaultAction::Kind::None));
        if (static_cast<int>(action.kind) !=
            static_cast<int>(other.peek(FaultSite::ServiceJob, key)
                                 .kind))
            diverged = true;
    }
    // Loose 6-sigma-ish band around 600/2000: deterministic given
    // the seed, the band only documents the intent.
    EXPECT_GT(killed, 450);
    EXPECT_LT(killed, 750);
    EXPECT_TRUE(diverged) << "different seeds gave identical plans";
}

TEST(FaultPlan, StatsCountInjectionsByKind)
{
    FaultPlanOptions options;
    options.cachePoisonRate = 1.0;
    FaultPlan plan(3, options);
    for (std::uint64_t key = 0; key < 10; ++key)
        plan.at(FaultSite::CacheInsert, key);
    plan.at(FaultSite::ServiceJob, 0); // rate 0: a decision, no fault
    const auto stats = plan.stats();
    EXPECT_EQ(stats.decisions, 11u);
    EXPECT_EQ(stats.poisons, 10u);
    EXPECT_EQ(stats.kills, 0u);
    EXPECT_EQ(stats.injected(), 10u);
}

TEST(FaultPlan, HostileFloodIsDeterministicAndDiverse)
{
    const auto flood = hostileSpecLines(99, 160);
    ASSERT_EQ(flood.size(), 160u);
    EXPECT_EQ(flood, hostileSpecLines(99, 160));

    // A different seed changes the generated tail but not the fixed
    // hand-picked prefix.
    const auto other = hostileSpecLines(100, 160);
    EXPECT_EQ(flood.front(), other.front());
    EXPECT_NE(flood, other);

    const std::set<std::string> unique(flood.begin(), flood.end());
    EXPECT_GT(unique.size(), 80u) << "flood should not be repetitive";
}

TEST(FaultPlan, PoolKillBreaksPromiseAndStallStillRuns)
{
    FaultPlanOptions kills;
    kills.poolKillRate = 1.0;
    {
        ThreadPool pool(2);
        pool.setFaultInjector(
            std::make_shared<FaultPlan>(1, kills));
        auto future = pool.submit([] { return 123; });
        // The defined typed error: a killed job's future reports
        // broken_promise, exactly like a job discarded at pool
        // destruction.
        EXPECT_THROW(future.get(), std::future_error);
    }

    FaultPlanOptions stalls;
    stalls.poolStallRate = 1.0;
    stalls.stallMillis = 1;
    for (const int threads : {1, 2}) {
        ThreadPool pool(threads);
        pool.setFaultInjector(
            std::make_shared<FaultPlan>(1, stalls));
        auto future = pool.submit([] { return 7; });
        EXPECT_EQ(future.get(), 7);
        // Clearing the injector restores production behaviour.
        pool.setFaultInjector(nullptr);
        EXPECT_EQ(pool.submit([] { return 8; }).get(), 8);
    }
}

} // namespace
