/**
 * @file
 * Chaos CI suite over ExecutionService: under injected worker
 * deaths, cache poisoning, lost coalescing registrations, queue
 * floods and stalls, every job ends in a bit-identical Result or a
 * clean typed error, within a deadline — for 1, 2 and 4 workers.
 *
 * Every scenario is seeded: a failure reproduces from the FaultPlan
 * seed in the test body, independent of thread scheduling.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.hpp"
#include "api/service.hpp"
#include "chaos/fault_plan.hpp"

namespace {

using hammer::api::ExecutionService;
using hammer::api::ExecutionServiceOptions;
using hammer::api::ExperimentSpec;
using hammer::api::parseSpecLine;
using hammer::api::Pipeline;
using hammer::api::QueueSaturatedError;
using hammer::api::Result;
using hammer::api::WorkerLostError;
using hammer::chaos::FaultPlan;
using hammer::chaos::FaultPlanOptions;
using hammer::chaos::hostileSpecLines;
using hammer::core::Distribution;

/** The chaos acceptance deadline: typed answer or bust. */
constexpr std::chrono::milliseconds kDeadline{30000};

bool
identical(const Distribution &a, const Distribution &b)
{
    if (a.numBits() != b.numBits() || a.support() != b.support())
        return false;
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        if (a.entries()[i].outcome != b.entries()[i].outcome ||
            a.entries()[i].probability != b.entries()[i].probability)
            return false;
    }
    return true;
}

ExperimentSpec
smallBvSpec(std::uint64_t seed)
{
    ExperimentSpec spec;
    spec.workload = "bv:6";
    spec.backend = "channel";
    spec.backendSpec.machine = "machineB";
    spec.backendSpec.shots = 2000;
    spec.backendSpec.seed = seed;
    spec.mitigation = "hammer";
    return spec;
}

std::vector<ExperimentSpec>
chaosSpecs()
{
    std::vector<ExperimentSpec> specs;
    for (std::uint64_t seed : {1, 2, 3}) {
        specs.push_back(smallBvSpec(seed));
        ExperimentSpec ghz;
        ghz.workload = "ghz:5";
        ghz.backendSpec.shots = 1500;
        ghz.backendSpec.seed = seed;
        specs.push_back(ghz);
    }
    return specs;
}

class ChaosService : public ::testing::TestWithParam<int>
{
  protected:
    int workers() const { return GetParam(); }

    ExecutionServiceOptions
    optionsWith(std::shared_ptr<FaultPlan> plan) const
    {
        ExecutionServiceOptions options;
        options.workers = workers();
        options.faultInjector = std::move(plan);
        return options;
    }
};

TEST_P(ChaosService, WorkerDeathsRetryToBitIdenticalResults)
{
    // Kill ~36% of job attempts (two fault points at 0.2 each); the
    // retry budget absorbs every death for this seed, and each
    // retried Result must still match Pipeline::run byte for byte.
    FaultPlanOptions faults;
    faults.workerKillRate = 0.2;
    auto plan = std::make_shared<FaultPlan>(1234, faults);

    ExecutionServiceOptions options = optionsWith(plan);
    options.maxRetries = 5;
    ExecutionService service(options);

    const Pipeline pipeline;
    const auto specs = chaosSpecs();
    std::vector<ExecutionService::JobHandle> handles;
    for (const ExperimentSpec &spec : specs)
        handles.push_back(service.submit(spec));

    for (std::size_t i = 0; i < handles.size(); ++i) {
        const auto result = service.waitFor(handles[i], kDeadline);
        ASSERT_TRUE(result.has_value()) << "job " << i
                                        << " missed the deadline";
        const Result expected = pipeline.run(specs[i]);
        EXPECT_TRUE(identical(expected.raw, result->raw))
            << "spec " << i << ": raw diverged after retry";
        EXPECT_TRUE(identical(expected.mitigated, result->mitigated))
            << "spec " << i << ": mitigated diverged after retry";
    }

    const auto stats = service.stats();
    EXPECT_GT(stats.workerDeaths, 0u) << "seed injected nothing";
    EXPECT_EQ(stats.workerDeaths, stats.retries)
        << "every death should have been retried, none exhausted";
    EXPECT_EQ(stats.workerLost, 0u);
    EXPECT_EQ(stats.completed + stats.coalesced, stats.submitted);
}

TEST_P(ChaosService, ExhaustedRetriesSurfaceWorkerLostWithinDeadline)
{
    FaultPlanOptions faults;
    faults.workerKillRate = 1.0; // every attempt dies
    ExecutionServiceOptions options =
        optionsWith(std::make_shared<FaultPlan>(7, faults));
    options.maxRetries = 2;
    ExecutionService service(options);

    const auto handle = service.submit(smallBvSpec(1));
    EXPECT_THROW(
        { (void)service.waitFor(handle, kDeadline); },
        WorkerLostError);

    const auto stats = service.stats();
    EXPECT_EQ(stats.workerDeaths, 3u); // initial try + 2 retries
    EXPECT_EQ(stats.retries, 2u);
    EXPECT_EQ(stats.workerLost, 1u);
    EXPECT_EQ(stats.completed + stats.coalesced, stats.submitted);
}

TEST_P(ChaosService, CachePoisonIsDetectedAndRecomputed)
{
    FaultPlanOptions faults;
    faults.cachePoisonRate = 1.0; // corrupt every cache insert
    ExecutionService service(
        optionsWith(std::make_shared<FaultPlan>(21, faults)));

    const ExperimentSpec spec = smallBvSpec(4);
    const auto first = service.waitFor(service.submit(spec),
                                       kDeadline);
    ASSERT_TRUE(first.has_value());

    // The repeat hits the poisoned result cache (and, recomputing,
    // the poisoned exec cache): both verifications must trip and the
    // recomputed answer must match the first bit for bit.
    const auto second = service.waitFor(service.submit(spec),
                                        kDeadline);
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(identical(first->raw, second->raw));
    EXPECT_TRUE(identical(first->mitigated, second->mitigated));

    const auto stats = service.stats();
    EXPECT_GE(stats.cachePoisonDetected, 2u)
        << "result + exec cache poison should both be caught";
    EXPECT_EQ(stats.resultCache.hits, 0u)
        << "a poisoned hit must not count as served";
}

TEST_P(ChaosService, DisabledVerificationServesThePoison)
{
    // Negative control: with verifyCache off the corruption IS
    // served, proving the poison fault (and so the detection above)
    // is not vacuous.
    FaultPlanOptions faults;
    faults.cachePoisonRate = 1.0;
    ExecutionServiceOptions options =
        optionsWith(std::make_shared<FaultPlan>(21, faults));
    options.verifyCache = false;
    ExecutionService service(options);

    const ExperimentSpec spec = smallBvSpec(4);
    const auto genuine = service.waitFor(service.submit(spec),
                                         kDeadline);
    ASSERT_TRUE(genuine.has_value());
    const auto poisoned = service.waitFor(service.submit(spec),
                                          kDeadline);
    ASSERT_TRUE(poisoned.has_value());
    EXPECT_FALSE(identical(genuine->mitigated, poisoned->mitigated));
    EXPECT_EQ(service.stats().cachePoisonDetected, 0u);
}

TEST_P(ChaosService, DroppedCoalescingStaysCorrect)
{
    // Dropping every coalescing registration loses deduplication,
    // never correctness: identical submits run redundantly and all
    // return the same bytes.
    FaultPlanOptions faults;
    faults.coalesceDropRate = 1.0;
    ExecutionService service(
        optionsWith(std::make_shared<FaultPlan>(31, faults)));

    const ExperimentSpec spec = smallBvSpec(9);
    std::vector<ExecutionService::JobHandle> handles;
    for (int i = 0; i < 4; ++i)
        handles.push_back(service.submit(spec));

    std::vector<Result> results;
    for (const auto &handle : handles) {
        auto result = service.waitFor(handle, kDeadline);
        ASSERT_TRUE(result.has_value());
        results.push_back(std::move(*result));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_TRUE(identical(results[0].raw, results[i].raw));
        EXPECT_TRUE(
            identical(results[0].mitigated, results[i].mitigated));
    }

    const auto stats = service.stats();
    EXPECT_GT(stats.coalesceDropped, 0u);
    EXPECT_EQ(stats.coalesced, 0u)
        << "with every registration dropped nothing can coalesce";
    EXPECT_EQ(stats.completed + stats.coalesced, stats.submitted);
}

TEST_P(ChaosService, SaturatedQueueRejectsWithTypedBackpressure)
{
    if (workers() < 2)
        GTEST_SKIP() << "a 1-worker service runs jobs inline in "
                        "submit(); its queue never grows";

    FaultPlanOptions faults;
    faults.workerStallRate = 1.0; // park every worker mid-job
    faults.stallMillis = 50;
    ExecutionServiceOptions options =
        optionsWith(std::make_shared<FaultPlan>(5, faults));
    options.maxQueueDepth = 1;
    ExecutionService service(options);

    std::vector<ExecutionService::JobHandle> accepted;
    std::vector<ExperimentSpec> acceptedSpecs;
    std::size_t rejected = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const ExperimentSpec spec = smallBvSpec(seed);
        try {
            accepted.push_back(service.submit(spec));
            acceptedSpecs.push_back(spec);
        } catch (const QueueSaturatedError &error) {
            ++rejected;
            EXPECT_EQ(error.limit(), 1u);
            EXPECT_GE(error.depth(), error.limit());
        }
    }
    EXPECT_GE(rejected, 1u) << "flood never saturated the queue";
    ASSERT_GE(accepted.size(), 1u);

    // Accepted jobs still finish with bit-identical results.
    const Pipeline pipeline;
    for (std::size_t i = 0; i < accepted.size(); ++i) {
        const auto result = service.waitFor(accepted[i], kDeadline);
        ASSERT_TRUE(result.has_value());
        EXPECT_TRUE(identical(pipeline.run(acceptedSpecs[i]).raw,
                              result->raw));
    }

    const auto stats = service.stats();
    EXPECT_EQ(stats.queueRejections, rejected);
    EXPECT_EQ(stats.submitted, accepted.size())
        << "rejected submits must not count as submitted";
    EXPECT_EQ(stats.completed + stats.coalesced, stats.submitted);
}

TEST_P(ChaosService, StalledJobTimesOutThenCompletes)
{
    if (workers() < 2)
        GTEST_SKIP() << "with one worker the job completes inside "
                        "submit(); waitFor can never time out";

    FaultPlanOptions faults;
    faults.workerStallRate = 1.0;
    faults.stallMillis = 400;
    ExecutionService service(
        optionsWith(std::make_shared<FaultPlan>(13, faults)));

    const ExperimentSpec spec = smallBvSpec(2);
    const auto handle = service.submit(spec);
    // Let a dedicated worker claim the job so the deadline below is
    // spent waiting on a genuinely stalled peer, not draining.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    const auto timedOut =
        service.waitFor(handle, std::chrono::milliseconds(50));
    EXPECT_FALSE(timedOut.has_value());
    EXPECT_GE(service.stats().waitTimeouts, 1u);

    // The timeout is an observation, not a cancellation: the job
    // still completes and later waits see the full result.
    const auto result = service.waitFor(handle, kDeadline);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(identical(Pipeline().run(spec).raw, result->raw));
}

TEST_P(ChaosService, SameSeedReplaysIdentically)
{
    // The replay contract: one seed fully determines a mixed-fault
    // campaign's results.  (Injection *counts* can vary with
    // scheduling when workers race the caches, so stats equality is
    // asserted only for the deterministic 1-worker schedule.)
    FaultPlanOptions faults;
    faults.workerKillRate = 0.1;
    faults.cachePoisonRate = 0.3;
    faults.coalesceDropRate = 0.3;
    faults.coalesceDelayRate = 0.3;
    faults.delayMillis = 1;

    const auto runCampaign = [&](std::shared_ptr<FaultPlan> plan) {
        ExecutionServiceOptions options = optionsWith(plan);
        options.maxRetries = 5;
        ExecutionService service(options);
        std::vector<ExecutionService::JobHandle> handles;
        const auto specs = chaosSpecs();
        for (const ExperimentSpec &spec : specs)
            handles.push_back(service.submit(spec));
        // One duplicate, so the coalescing sites are exercised.
        handles.push_back(service.submit(specs.front()));
        std::vector<Result> results;
        for (const auto &handle : handles) {
            auto result = service.waitFor(handle, kDeadline);
            EXPECT_TRUE(result.has_value());
            if (result)
                results.push_back(std::move(*result));
        }
        return results;
    };

    auto planA = std::make_shared<FaultPlan>(77, faults);
    auto planB = std::make_shared<FaultPlan>(77, faults);
    const auto first = runCampaign(planA);
    const auto second = runCampaign(planB);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_TRUE(identical(first[i].raw, second[i].raw))
            << "replay diverged at job " << i;
        EXPECT_TRUE(
            identical(first[i].mitigated, second[i].mitigated))
            << "replay diverged at job " << i;
    }
    if (workers() == 1) {
        const auto statsA = planA->stats();
        const auto statsB = planB->stats();
        EXPECT_EQ(statsA.decisions, statsB.decisions);
        EXPECT_EQ(statsA.kills, statsB.kills);
        EXPECT_EQ(statsA.poisons, statsB.poisons);
        EXPECT_EQ(statsA.drops, statsB.drops);
    }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ChaosService,
                         ::testing::Values(1, 2, 4));

TEST(ChaosFlood, HostileSpecLinesDegradeToTypedErrors)
{
    // Every line of the flood must either parse or throw the
    // parser's one typed error — no crash, no stray exception type.
    const auto flood = hostileSpecLines(5, 160);
    std::size_t parsed = 0;
    std::size_t rejected = 0;
    for (const std::string &line : flood) {
        try {
            const auto spec = parseSpecLine(line);
            EXPECT_FALSE(spec.spec.workload.empty());
            ++parsed;
        } catch (const std::invalid_argument &) {
            ++rejected;
        }
        // Anything else (std::bad_alloc, segfault, std::logic_error)
        // propagates and fails the test.
    }
    EXPECT_EQ(parsed + rejected, flood.size());
    EXPECT_GE(parsed, 5u) << "flood lost its valid sprinkling";
    EXPECT_GE(rejected, 40u) << "flood lost its hostility";
}

} // namespace
