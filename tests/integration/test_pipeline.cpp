/**
 * @file
 * End-to-end integration tests: build benchmark circuit -> route ->
 * sample noisily -> post-process with HAMMER -> measure improvement.
 * These assert the paper's headline behaviours on our simulated
 * substrate.
 */

#include <gtest/gtest.h>

#include "circuits/bv.hpp"
#include "circuits/coupling.hpp"
#include "circuits/ghz.hpp"
#include "circuits/qaoa_circuit.hpp"
#include "circuits/transpiler.hpp"
#include "common/stats.hpp"
#include "core/ehd.hpp"
#include "core/hammer.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "metrics/metrics.hpp"
#include "mitigation/readout_mitigation.hpp"
#include "noise/channel_sampler.hpp"
#include "noise/trajectory_sampler.hpp"
#include "qaoa/cost.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using hammer::core::Distribution;
using namespace hammer::circuits;
using namespace hammer::noise;

TEST(Pipeline, HammerImprovesBvPstAcrossKeysAndMachines)
{
    // Miniature version of the paper's Fig. 8 sweep: several keys on
    // several machines; the geometric-mean PST gain must exceed 1.
    Rng rng(1);
    std::vector<double> gains;
    for (const std::string machine : {"machineA", "machineB",
                                      "machineC"}) {
        ChannelSampler sampler(machinePreset(machine));
        for (int n : {6, 8, 10}) {
            const Bits key = ((Bits{1} << n) - 1) & 0xAAAAAAAAAAull
                ? ((Bits{1} << n) - 1) ^ (Bits{0x2A} & ((Bits{1} << n) - 1))
                : (Bits{1} << n) - 1;
            const auto routed = transpile(
                bernsteinVazirani(n, key), CouplingMap::line(n + 1));
            Rng shot_rng = rng.split();
            const Distribution noisy =
                sampler.sample(routed, n, 8000, shot_rng);
            const Distribution fixed = hammer::core::reconstruct(noisy);
            const double before = hammer::metrics::pst(noisy, {key});
            const double after = hammer::metrics::pst(fixed, {key});
            ASSERT_GT(before, 0.0);
            gains.push_back(after / before);
        }
    }
    EXPECT_GT(hammer::common::geomean(gains), 1.0)
        << "HAMMER should improve BV PST on average (paper: 1.38x)";
}

TEST(Pipeline, HammerImprovesBvIstAcrossSizes)
{
    // Paper Fig. 8(b): IST improves consistently (gmean 1.74x on
    // hardware). On sampled data we assert the geometric-mean gain
    // exceeds 1; the IST > PST gain relation is asserted on the exact
    // channel model in the core unit tests.
    Rng rng(2);
    ChannelSampler sampler(machinePreset("machineB"));
    std::vector<double> pst_gain, ist_gain;
    for (int n : {8, 10, 12}) {
        const Bits key = (Bits{1} << n) - 1;
        const auto routed = transpile(
            bernsteinVazirani(n, key), CouplingMap::line(n + 1));
        Rng shot_rng = rng.split();
        const Distribution noisy =
            sampler.sample(routed, n, 8000, shot_rng);
        const Distribution fixed = hammer::core::reconstruct(noisy);
        pst_gain.push_back(hammer::metrics::pst(fixed, {key}) /
                           hammer::metrics::pst(noisy, {key}));
        ist_gain.push_back(hammer::metrics::ist(fixed, {key}) /
                           hammer::metrics::ist(noisy, {key}));
    }
    EXPECT_GT(hammer::common::geomean(ist_gain), 1.0);
    EXPECT_GT(hammer::common::geomean(pst_gain), 1.0);
}

TEST(Pipeline, HammerImprovesGhzWithTrajectoryBackend)
{
    // Cross-check the headline claim on the physics-faithful backend.
    const int n = 8;
    const auto routed = trivialRouting(ghz(n));
    const std::vector<Bits> correct{0, (Bits{1} << n) - 1};
    TrajectorySampler sampler(machinePreset("machineB").scaled(2.0),
                              120);
    Rng rng(3);
    const Distribution noisy = sampler.sample(routed, n, 12000, rng);
    const Distribution fixed = hammer::core::reconstruct(noisy);
    EXPECT_GT(hammer::metrics::pst(fixed, correct),
              hammer::metrics::pst(noisy, correct));
}

TEST(Pipeline, HammerImprovesQaoaCostRatio)
{
    // Miniature Fig. 9: 3-regular max-cut instances.
    Rng rng(4);
    ChannelSampler sampler(machinePreset("sycamore"));
    std::vector<double> gains;
    for (int n : {6, 8, 10}) {
        Rng graph_rng = rng.split();
        const auto g = hammer::graph::kRegular(n, 3, graph_rng);
        const auto opt = hammer::graph::bruteForceOptimum(g);
        const auto routed = transpile(
            qaoaCircuit(g, linearRampParams(2)),
            CouplingMap::line(n));
        Rng shot_rng = rng.split();
        const Distribution noisy =
            sampler.sample(routed, n, 12000, shot_rng);
        const Distribution fixed = hammer::core::reconstruct(noisy);
        const double cr_before =
            hammer::qaoa::costRatio(noisy, g, opt.minCost);
        const double cr_after =
            hammer::qaoa::costRatio(fixed, g, opt.minCost);
        gains.push_back(cr_after - cr_before);
    }
    // CR should improve on average across instances.
    EXPECT_GT(hammer::common::mean(gains), 0.0);
}

TEST(Pipeline, HammerReducesTvdToIdealQaoa)
{
    // Paper Section 6.4: TVD to the ideal simulation decreases.
    Rng rng(5);
    const auto g = hammer::graph::ring(8);
    const auto circuit = qaoaCircuit(g, linearRampParams(2));
    const auto ideal_state = hammer::sim::runCircuit(circuit);
    const Distribution ideal = Distribution::fromProbabilityFn(
        8, [&](std::size_t i) { return ideal_state.probability(i); });

    ChannelSampler sampler(machinePreset("machineA").scaled(2.0));
    const auto routed = trivialRouting(circuit);
    const Distribution noisy = sampler.sample(routed, 8, 16000, rng);
    const Distribution fixed = hammer::core::reconstruct(noisy);
    EXPECT_LT(hammer::metrics::tvd(fixed, ideal),
              hammer::metrics::tvd(noisy, ideal));
}

TEST(Pipeline, GridQaoaBeatsThreeRegularOnSameDevice)
{
    // Paper Section 6.4: grid instances route without SWAPs and keep
    // higher CR than 3-regular instances of the same size.
    Rng rng(6);
    ChannelSampler sampler(machinePreset("sycamore"));

    const auto grid_graph = hammer::graph::grid(2, 4);
    const auto grid_routed = transpile(
        qaoaCircuit(grid_graph, linearRampParams(2)),
        CouplingMap::grid(2, 4));
    EXPECT_EQ(grid_routed.addedSwaps, 0);

    Rng reg_rng = rng.split();
    const auto reg_graph = hammer::graph::kRegular(8, 3, reg_rng);
    const auto reg_routed = transpile(
        qaoaCircuit(reg_graph, linearRampParams(2)),
        CouplingMap::grid(2, 4));
    EXPECT_GT(reg_routed.addedSwaps, 0);

    Rng rng_a = rng.split(), rng_b = rng.split();
    const double cr_grid = hammer::qaoa::costRatio(
        sampler.sample(grid_routed, 8, 12000, rng_a), grid_graph);
    const double cr_reg = hammer::qaoa::costRatio(
        sampler.sample(reg_routed, 8, 12000, rng_b), reg_graph);
    EXPECT_GT(cr_grid, cr_reg);
}

TEST(Pipeline, HammerComposesWithReadoutMitigation)
{
    // HAMMER is orthogonal to measurement-error mitigation (paper
    // Section 8): applying it after readout correction should still
    // help.
    Rng rng(7);
    const Bits key = 0b1111111111;
    const NoiseModel model = machinePreset("machineC");
    ChannelSampler sampler(model);
    const auto routed = transpile(
        bernsteinVazirani(10, key), CouplingMap::line(11));
    const Distribution noisy = sampler.sample(routed, 10, 16000, rng);

    const Distribution mitigated =
        hammer::mitigation::mitigateReadout(noisy, model);
    const Distribution both = hammer::core::reconstruct(mitigated);

    EXPECT_GT(hammer::metrics::pst(mitigated, {key}),
              hammer::metrics::pst(noisy, {key}))
        << "readout mitigation alone helps";
    EXPECT_GT(hammer::metrics::pst(both, {key}),
              hammer::metrics::pst(mitigated, {key}))
        << "HAMMER adds improvement on top";
}

TEST(Pipeline, EhdGrowsWithCircuitSize)
{
    // Paper Fig. 12: EHD increases with qubit count but stays well
    // under the uniform model's n/2.
    Rng rng(8);
    ChannelSampler sampler(machinePreset("machineA"));
    double previous = 0.0;
    for (int n : {6, 10, 14}) {
        const Bits key = (Bits{1} << n) - 1;
        const auto routed = transpile(
            bernsteinVazirani(n, key), CouplingMap::line(n + 1));
        Rng shot_rng = rng.split();
        const Distribution noisy =
            sampler.sample(routed, n, 8000, shot_rng);
        const double ehd =
            hammer::core::expectedHammingDistance(noisy, {key});
        EXPECT_GT(ehd, previous * 0.8)
            << "EHD should broadly grow with n";
        EXPECT_LT(ehd, n / 2.0);
        previous = ehd;
    }
}

TEST(Pipeline, HammerPreservesMultiSolutionStructure)
{
    // GHZ has two correct outcomes; HAMMER must not collapse one.
    const int n = 6;
    const auto routed = trivialRouting(ghz(n));
    ChannelSampler sampler(machinePreset("machineA"));
    Rng rng(9);
    const Distribution noisy = sampler.sample(routed, n, 12000, rng);
    const Distribution fixed = hammer::core::reconstruct(noisy);
    const Bits ones = (Bits{1} << n) - 1;
    EXPECT_GT(fixed.probability(0), 0.2);
    EXPECT_GT(fixed.probability(ones), 0.2);
}

} // namespace
