/**
 * @file
 * The serving interchange surface the sharded transport stands on:
 * ExecutionService::shutdown() semantics, the machine-readable
 * service-stats JSON line, Result JSON round-trips through
 * resultFromJson/canonicalResultJson, and the optional priority
 * field in both spec-line syntaxes.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "api/json.hpp"
#include "api/pipeline.hpp"
#include "api/service.hpp"

namespace {

using hammer::api::canonicalResultJson;
using hammer::api::ExecutionService;
using hammer::api::ExecutionServiceOptions;
using hammer::api::ExperimentSpec;
using hammer::api::parseJson;
using hammer::api::parseSpecLine;
using hammer::api::Result;
using hammer::api::resultFromJson;
using hammer::api::ServiceShutdownError;
using hammer::api::serviceStatsJson;

ExperimentSpec
smallSpec(std::uint64_t seed = 1)
{
    ExperimentSpec spec;
    spec.workload = "bv:4";
    spec.backend = "channel";
    spec.backendSpec.shots = 128;
    spec.backendSpec.seed = seed;
    return spec;
}

// ---------------------------------------------------------------------------
// shutdown()
// ---------------------------------------------------------------------------

TEST(Shutdown, DrainsAcceptedWorkThenRejectsNewSubmits)
{
    ExecutionServiceOptions options;
    options.workers = 2;
    ExecutionService service{options};
    std::vector<ExecutionService::JobHandle> handles;
    for (int i = 0; i < 6; ++i)
        handles.push_back(service.submit(smallSpec(i + 1)));

    service.shutdown();
    EXPECT_TRUE(service.isShutdown());

    // Everything accepted before the call completes normally.
    for (const auto &handle : handles) {
        const Result result = service.wait(handle);
        EXPECT_EQ(result.family, "bv");
    }

    // New work is refused with the typed error, and counted.
    EXPECT_THROW(service.submit(smallSpec()), ServiceShutdownError);
    EXPECT_THROW(service.submit(smallSpec()), ServiceShutdownError);
    EXPECT_EQ(service.stats().shutdownRejections, 2u);

    // wait() on a drained handle still works after shutdown.
    EXPECT_EQ(service.wait(handles.front()).family, "bv");
}

TEST(Shutdown, IsIdempotent)
{
    ExecutionService service;
    const auto handle = service.submit(smallSpec());
    service.shutdown();
    service.shutdown();
    service.shutdown();
    EXPECT_TRUE(service.isShutdown());
    EXPECT_EQ(service.wait(handle).family, "bv");
    EXPECT_EQ(service.stats().shutdownRejections, 0u);
}

TEST(Shutdown, ErrorIsAlsoAServiceError)
{
    ExecutionService service;
    service.shutdown();
    // Callers hardened against ServiceError need no new catch site.
    EXPECT_THROW(service.submit(smallSpec()),
                 hammer::api::ServiceError);
}

// ---------------------------------------------------------------------------
// The service-stats JSON line
// ---------------------------------------------------------------------------

TEST(ServiceStatsJson, IsOneParseableLineWithTheFullCounterSet)
{
    ExecutionService service{};
    service.wait(service.submit(smallSpec()));
    service.wait(service.submit(smallSpec())); // Cache hit.

    const std::string line =
        serviceStatsJson(service.stats(), service.workers());
    EXPECT_EQ(line.find('\n'), std::string::npos)
        << "must be a single line for log scraping";

    const auto stats = parseJson(line);
    EXPECT_EQ(stats.at("type").asString(), "service_stats");
    EXPECT_EQ(stats.at("submitted").asNumber(), 2.0);
    EXPECT_EQ(stats.at("completed").asNumber(), 2.0);
    EXPECT_EQ(stats.at("execute_runs").asNumber(), 1.0);
    EXPECT_EQ(stats.at("result_cache").at("hits").asNumber(), 1.0);
    EXPECT_EQ(stats.at("result_cache").at("misses").asNumber(), 1.0);
    EXPECT_GE(stats.at("workers").asNumber(), 1.0);
    EXPECT_GT(stats.at("busy_seconds").asNumber(), 0.0);
    EXPECT_EQ(stats.at("shutdown_rejections").asNumber(), 0.0);
}

// ---------------------------------------------------------------------------
// Result JSON round-trips (the wire payload format)
// ---------------------------------------------------------------------------

TEST(ResultJson, RoundTripsByteExactThroughResultFromJson)
{
    ExperimentSpec spec = smallSpec();
    spec.label = "wire-test";
    spec.mitigation = "readout,hammer";
    ExecutionService service;
    const Result original = service.wait(service.submit(spec));

    const std::string json = original.json(-1);
    const Result decoded = resultFromJson(json);
    EXPECT_EQ(decoded.json(-1), json)
        << "decode/re-encode must be byte-exact";
    EXPECT_EQ(decoded.label, "wire-test");
    EXPECT_EQ(decoded.family, original.family);
    EXPECT_EQ(decoded.raw.entries().size(),
              original.raw.entries().size());
}

TEST(ResultJson, CanonicalFormDropsIdentityButNotPhysics)
{
    ExperimentSpec spec = smallSpec();
    spec.label = "first-label";
    ExecutionService service;
    const Result result = service.wait(service.submit(spec));
    const std::string canonical =
        canonicalResultJson(result.json(-1));

    // Identity/timing fields are gone; the physics stays.
    const auto parsed = parseJson(canonical);
    EXPECT_EQ(parsed.find("label"), nullptr);
    EXPECT_EQ(parsed.find("timings"), nullptr);
    EXPECT_NE(parsed.at("histogram").find("raw"), nullptr);
    EXPECT_NE(parsed.at("histogram").find("mitigated"), nullptr);

    // Two runs differing only in label canonicalise identically —
    // the bit-identity comparator the sharded transport gates on.
    spec.label = "second-label";
    const Result relabeled = service.wait(service.submit(spec));
    EXPECT_EQ(canonicalResultJson(relabeled.json(-1)), canonical);

    // Canonicalising is idempotent.
    EXPECT_EQ(canonicalResultJson(canonical), canonical);
}

// ---------------------------------------------------------------------------
// The priority field (CSV 8th field; JSON key is covered alongside
// the other keys in test_service.cpp)
// ---------------------------------------------------------------------------

TEST(SpecLinePriority, ParsesTheEighthCsvField)
{
    const auto parsed = parseSpecLine(
        "bv:5, channel, 512, 3, hammer, machineA, lbl, 7");
    EXPECT_EQ(parsed.priority, 7);
    EXPECT_EQ(parsed.spec.label, "lbl");

    const auto negative = parseSpecLine(
        "bv:5,channel,512,3,hammer,machineA,lbl,-2");
    EXPECT_EQ(negative.priority, -2);

    // Omitted -> neutral priority.
    EXPECT_EQ(parseSpecLine("bv:5,channel,512").priority, 0);
}

TEST(SpecLinePriority, MalformedValuesAreNamedErrors)
{
    for (const std::string line :
         {"bv:5,channel,512,3,hammer,machineA,lbl,soon",
          "bv:5,channel,512,3,hammer,machineA,lbl,1.5",
          "{\"workload\": \"bv:5\", \"priority\": \"high\"}",
          "{\"workload\": \"bv:5\", \"priority\": 1.5}"}) {
        try {
            parseSpecLine(line);
            FAIL() << "expected std::invalid_argument for: " << line;
        } catch (const std::invalid_argument &error) {
            EXPECT_NE(
                std::string(error.what()).find("priority"),
                std::string::npos)
                << error.what();
        }
    }
}

TEST(SpecLinePriority, FlowsFromSpecLineThroughSubmit)
{
    // Drain order under priority is proven deterministically at the
    // pool layer (ThreadPool.SubmitDrainsHighestPriorityFirstThenFifo);
    // here: the parsed field reaches submit() and priorities do not
    // perturb results.
    ExecutionServiceOptions options;
    options.workers = 2;
    ExecutionService service{options};
    std::vector<ExecutionService::JobHandle> handles;
    for (int i = 0; i < 4; ++i) {
        const auto parsed = parseSpecLine(
            "bv:4,channel,128," + std::to_string(i + 1) +
            ",hammer,machineA,p" + std::to_string(i) + "," +
            std::to_string(10 - i));
        handles.push_back(
            service.submit(parsed.spec, parsed.priority));
    }
    for (int i = 0; i < 4; ++i) {
        const Result result = service.wait(handles[i]);
        EXPECT_EQ(result.label, "p" + std::to_string(i));
        EXPECT_EQ(result.seed, static_cast<std::uint64_t>(i + 1));
    }
}

} // namespace
