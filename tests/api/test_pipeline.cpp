/**
 * @file
 * Pipeline: end-to-end runs, boundary validation, runMany
 * determinism across thread counts, and Result serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "api/pipeline.hpp"
#include "core/io.hpp"
#include "graph/generators.hpp"

namespace {

using hammer::api::BackendSpec;
using hammer::api::ExperimentSpec;
using hammer::api::Pipeline;
using hammer::api::Result;
using hammer::core::Distribution;

bool
identical(const Distribution &a, const Distribution &b)
{
    if (a.numBits() != b.numBits() || a.support() != b.support())
        return false;
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        if (a.entries()[i].outcome != b.entries()[i].outcome ||
            a.entries()[i].probability != b.entries()[i].probability)
            return false;
    }
    return true;
}

ExperimentSpec
smallBvSpec(std::uint64_t seed)
{
    ExperimentSpec spec;
    spec.workload = "bv:6";
    spec.backend = "channel";
    spec.backendSpec.machine = "machineB";
    spec.backendSpec.shots = 2000;
    spec.backendSpec.seed = seed;
    spec.mitigation = "hammer";
    return spec;
}

TEST(Pipeline, RunProducesAScoredResult)
{
    const Result result = Pipeline().run(smallBvSpec(3));
    EXPECT_EQ(result.workloadSpec, "bv:6");
    EXPECT_EQ(result.family, "bv");
    EXPECT_EQ(result.backendName, "channel");
    EXPECT_EQ(result.mitigationName, "hammer");
    EXPECT_EQ(result.measuredQubits, 6);
    EXPECT_EQ(result.shots, 2000);
    EXPECT_TRUE(result.raw.normalized());
    EXPECT_TRUE(result.mitigated.normalized());
    EXPECT_FALSE(identical(result.raw, result.mitigated))
        << "the hammer stage must have transformed the histogram";

    // Scored: BV has a known correct outcome.
    EXPECT_TRUE(std::isfinite(result.pstRaw));
    EXPECT_GT(result.pstRaw, 0.0);
    EXPECT_GT(result.pstMitigated, result.pstRaw)
        << "HAMMER should improve PST on this workload";
    EXPECT_GT(result.hammerStats.uniqueOutcomes, 0u);

    // Every stage is timed, plus one "mitigate:<stage>" detail row
    // per mitigation-chain stage.
    for (const char *stage :
         {"workload", "backend", "sample", "mitigate", "score"})
        EXPECT_GE(result.stageSeconds(stage), 0.0) << stage;
    EXPECT_EQ(result.timings.size(), 6u);
    EXPECT_EQ(result.timings[4].stage, "mitigate:hammer");
    EXPECT_LE(result.stageSeconds("mitigate:hammer"),
              result.stageSeconds("mitigate"));
    EXPECT_GT(result.totalSeconds(), 0.0);
}

TEST(Pipeline, RunIsDeterministicInTheSpec)
{
    const Result a = Pipeline().run(smallBvSpec(11));
    const Result b = Pipeline().run(smallBvSpec(11));
    EXPECT_TRUE(identical(a.raw, b.raw));
    EXPECT_TRUE(identical(a.mitigated, b.mitigated));
    const Result c = Pipeline().run(smallBvSpec(12));
    EXPECT_FALSE(identical(a.raw, c.raw)) << "seed must matter";
}

TEST(Pipeline, ValidatesAtTheBoundary)
{
    Pipeline pipeline;

    ExperimentSpec no_workload;
    EXPECT_THROW(pipeline.run(no_workload), std::invalid_argument);

    auto bad_shots = smallBvSpec(1);
    bad_shots.backendSpec.shots = 0;
    EXPECT_THROW(pipeline.run(bad_shots), std::invalid_argument);
    bad_shots.backendSpec.shots = -100;
    EXPECT_THROW(pipeline.run(bad_shots), std::invalid_argument);

    auto bad_trajectories = smallBvSpec(1);
    bad_trajectories.backend = "trajectory";
    bad_trajectories.backendSpec.trajectories = -1;
    EXPECT_THROW(pipeline.run(bad_trajectories),
                 std::invalid_argument);

    auto bad_workload = smallBvSpec(1);
    bad_workload.workload = "warp:4";
    EXPECT_THROW(pipeline.run(bad_workload), std::invalid_argument);

    auto bad_backend = smallBvSpec(1);
    bad_backend.backend = "warpdrive";
    EXPECT_THROW(pipeline.run(bad_backend), std::invalid_argument);

    auto bad_mitigation = smallBvSpec(1);
    bad_mitigation.mitigation = "sorcery";
    EXPECT_THROW(pipeline.run(bad_mitigation),
                 std::invalid_argument);
}

TEST(Pipeline, RunManyIsBitIdenticalForEveryThreadCount)
{
    // The acceptance-criterion test: a mixed batch fanned across 1
    // and 4 workers must produce byte-for-byte identical histograms.
    std::vector<ExperimentSpec> specs;
    for (std::uint64_t seed : {1, 2, 3}) {
        specs.push_back(smallBvSpec(seed));
        ExperimentSpec ghz;
        ghz.workload = "ghz:5";
        ghz.backendSpec.shots = 1500;
        ghz.backendSpec.seed = seed;
        specs.push_back(ghz);
        ExperimentSpec qaoa;
        qaoa.workload = "qaoa:6:1";
        qaoa.backend = "trajectory";
        qaoa.backendSpec.trajectories = 10;
        qaoa.backendSpec.shots = 500;
        qaoa.backendSpec.seed = seed;
        qaoa.mitigation = "readout,hammer";
        specs.push_back(qaoa);
    }

    Pipeline pipeline;
    const auto serial = pipeline.runMany(specs, 1);
    const auto parallel = pipeline.runMany(specs, 4);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(identical(serial[i].raw, parallel[i].raw))
            << "raw histogram diverged on spec " << i;
        EXPECT_TRUE(
            identical(serial[i].mitigated, parallel[i].mitigated))
            << "mitigated histogram diverged on spec " << i;
        EXPECT_EQ(serial[i].workloadSpec, parallel[i].workloadSpec);
    }
}

TEST(Pipeline, RunManyPreservesSpecOrder)
{
    std::vector<ExperimentSpec> specs;
    ExperimentSpec ghz;
    ghz.workload = "ghz:4";
    ghz.backendSpec.shots = 500;
    specs.push_back(ghz);
    specs.push_back(smallBvSpec(5));
    const auto results = Pipeline().runMany(specs, 2);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].family, "ghz");
    EXPECT_EQ(results[1].family, "bv");
}

TEST(Result, CsvMatchesTheInterchangeWriter)
{
    const Result result = Pipeline().run(smallBvSpec(3));
    std::ostringstream via_result, via_io;
    result.writeCsv(via_result);
    hammer::core::writeDistributionCsv(via_io, result.mitigated);
    EXPECT_EQ(via_result.str(), via_io.str());

    // CSV round-trips through the reader.
    const auto reread =
        hammer::core::readDistributionCsv(via_result.str());
    EXPECT_EQ(reread.support(), result.mitigated.support());
}

TEST(Result, JsonCarriesHistogramStatsAndTimings)
{
    const Result result = Pipeline().run(smallBvSpec(3));
    const std::string json = result.json();
    for (const char *needle :
         {"\"workload\":\"bv:6\"", "\"backend\":\"channel\"",
          "\"mitigation\":\"hammer\"", "\"shots\":2000",
          "\"timings\":", "\"sample\":", "\"hammer_stats\":",
          "\"unique_outcomes\":", "\"metrics\":", "\"pst_raw\":",
          "\"histogram\":", "\"raw\":[", "\"mitigated\":[",
          "\"correct_outcomes\":"})
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle << " in:\n" << json;

    // max_outcomes truncates the histogram arrays.
    const std::string truncated = result.json(1);
    EXPECT_LT(truncated.size(), json.size());
}

TEST(Result, JsonRendersUnscoredMetricsAsNull)
{
    // A workload with no known correct outcomes: explicit-angle QAOA
    // without the brute-force optimum.
    ExperimentSpec spec;
    spec.workloadInstance = hammer::api::makeQaoaWorkload(
        hammer::graph::ring(6), 1, false, 0, 0, "ring",
        /*compute_optimum=*/false);
    spec.backendSpec.shots = 500;
    const Result result = Pipeline().run(spec);
    EXPECT_TRUE(std::isnan(result.pstRaw));
    EXPECT_NE(result.json().find("\"pst_raw\":null"),
              std::string::npos);
}

} // namespace
