/**
 * @file
 * ExecutionService: bit-identity with Pipeline::run across worker
 * counts, request coalescing and LRU caching (counter-proven),
 * canonical spec keys, submit/wait/poll semantics, and the serving
 * protocol's spec-line parser.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "api/service.hpp"
#include "graph/generators.hpp"
#include "noise/exact_sampler.hpp"

namespace {

using hammer::api::canonicalExecKey;
using hammer::api::canonicalSpecKey;
using hammer::api::ExecutionService;
using hammer::api::ExecutionServiceOptions;
using hammer::api::ExperimentSpec;
using hammer::api::parseSpecLine;
using hammer::api::Pipeline;
using hammer::api::Result;
using hammer::core::Distribution;

bool
identical(const Distribution &a, const Distribution &b)
{
    if (a.numBits() != b.numBits() || a.support() != b.support())
        return false;
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        if (a.entries()[i].outcome != b.entries()[i].outcome ||
            a.entries()[i].probability != b.entries()[i].probability)
            return false;
    }
    return true;
}

/** Same double, NaN == NaN (unscored metrics compare equal). */
bool
sameMetric(double a, double b)
{
    return (std::isnan(a) && std::isnan(b)) || a == b;
}

void
expectSameResult(const Result &expected, const Result &actual,
                 const std::string &context)
{
    EXPECT_TRUE(identical(expected.raw, actual.raw))
        << context << ": raw histogram diverged";
    EXPECT_TRUE(identical(expected.mitigated, actual.mitigated))
        << context << ": mitigated histogram diverged";
    EXPECT_EQ(expected.label, actual.label) << context;
    EXPECT_EQ(expected.workloadSpec, actual.workloadSpec) << context;
    EXPECT_EQ(expected.family, actual.family) << context;
    EXPECT_EQ(expected.mitigationName, actual.mitigationName)
        << context;
    EXPECT_EQ(expected.measuredQubits, actual.measuredQubits)
        << context;
    EXPECT_TRUE(sameMetric(expected.pstMitigated,
                           actual.pstMitigated))
        << context;
    EXPECT_TRUE(sameMetric(expected.ehdMitigated,
                           actual.ehdMitigated))
        << context;
    EXPECT_EQ(expected.hammerStats.uniqueOutcomes,
              actual.hammerStats.uniqueOutcomes)
        << context;
}

ExperimentSpec
smallBvSpec(std::uint64_t seed)
{
    ExperimentSpec spec;
    spec.workload = "bv:6";
    spec.backend = "channel";
    spec.backendSpec.machine = "machineB";
    spec.backendSpec.shots = 2000;
    spec.backendSpec.seed = seed;
    spec.mitigation = "hammer";
    return spec;
}

/** The api suite's mixed batch (mirrors test_pipeline's). */
std::vector<ExperimentSpec>
mixedSpecs()
{
    std::vector<ExperimentSpec> specs;
    for (std::uint64_t seed : {1, 2, 3}) {
        specs.push_back(smallBvSpec(seed));
        ExperimentSpec ghz;
        ghz.workload = "ghz:5";
        ghz.backendSpec.shots = 1500;
        ghz.backendSpec.seed = seed;
        specs.push_back(ghz);
        ExperimentSpec qaoa;
        qaoa.workload = "qaoa:6:1";
        qaoa.backend = "trajectory";
        qaoa.backendSpec.trajectories = 10;
        qaoa.backendSpec.shots = 500;
        qaoa.backendSpec.seed = seed;
        qaoa.mitigation = "readout,hammer";
        specs.push_back(qaoa);
    }
    return specs;
}

TEST(ExecutionService, BitIdenticalToPipelineForEveryWorkerCount)
{
    // The acceptance criterion: every spec in the api suite, served
    // through the asynchronous front door with 1, 2 and 4 workers,
    // must reproduce Pipeline::run byte for byte.
    const auto specs = mixedSpecs();
    const Pipeline pipeline;
    std::vector<Result> expected;
    for (const auto &spec : specs)
        expected.push_back(pipeline.run(spec));

    for (int workers : {1, 2, 4}) {
        ExecutionServiceOptions options;
        options.workers = workers;
        ExecutionService service{options};
        const auto results = service.runMany(specs);
        ASSERT_EQ(results.size(), specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i)
            expectSameResult(expected[i], results[i],
                             "spec " + std::to_string(i) + ", " +
                                 std::to_string(workers) +
                                 " workers");
    }
}

TEST(ExecutionService, IdenticalSpecsExecuteOnce)
{
    // The dedup acceptance criterion: N identical submissions, one
    // execution, and the counters prove where the other N-1 went.
    constexpr int kJobs = 6;
    ExecutionService service;
    std::vector<ExecutionService::JobHandle> handles;
    for (int i = 0; i < kJobs; ++i)
        handles.push_back(service.submit(smallBvSpec(42)));

    const Result reference = Pipeline().run(smallBvSpec(42));
    for (const auto &handle : handles)
        expectSameResult(reference, service.wait(handle), "dedup");

    const auto stats = service.stats();
    EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kJobs));
    EXPECT_EQ(stats.executeRuns, 1u)
        << "the expensive execute stage must run exactly once";
    EXPECT_EQ(stats.resultCache.hits + stats.coalesced +
                  stats.executeShared,
              static_cast<std::uint64_t>(kJobs - 1))
        << "every other job must be served by a cache or a peer";
}

TEST(ExecutionService, CoalescesExecutionAcrossMitigations)
{
    // Same (workload, backend, noise, shots, seed), different
    // mitigation chains: the sample stage runs once and both jobs
    // still match their own Pipeline::run.
    auto hammer_spec = smallBvSpec(7);
    auto readout_spec = smallBvSpec(7);
    readout_spec.mitigation = "readout,hammer";
    ASSERT_EQ(*canonicalExecKey(hammer_spec),
              *canonicalExecKey(readout_spec));
    ASSERT_NE(*canonicalSpecKey(hammer_spec),
              *canonicalSpecKey(readout_spec));

    // One worker: jobs run in submission order, so the second is
    // guaranteed to find the first's execution outcome (with more
    // workers the sharing is racy-but-correct: either job may
    // compute, and the histograms agree regardless).
    ExecutionServiceOptions options;
    options.workers = 1;
    ExecutionService service{options};
    const auto a = service.submit(hammer_spec);
    const auto b = service.submit(readout_spec);
    expectSameResult(Pipeline().run(hammer_spec), service.wait(a),
                     "hammer job");
    expectSameResult(Pipeline().run(readout_spec), service.wait(b),
                     "readout,hammer job");

    const auto stats = service.stats();
    EXPECT_EQ(stats.executeRuns, 1u);
    EXPECT_EQ(stats.executeShared, 1u);
}

TEST(ExecutionService, BoundedLruEvicts)
{
    ExecutionServiceOptions options;
    options.workers = 1;
    options.cacheCapacity = 2;
    ExecutionService service{options};

    // Three distinct specs fill and overflow the 2-entry cache...
    service.wait(service.submit(smallBvSpec(1)));
    service.wait(service.submit(smallBvSpec(2)));
    service.wait(service.submit(smallBvSpec(3)));
    EXPECT_EQ(service.stats().resultCache.entries, 2u);

    // ...evicting the least recently used spec, which re-executes.
    service.wait(service.submit(smallBvSpec(1)));
    const auto stats = service.stats();
    EXPECT_EQ(stats.executeRuns, 4u);
    EXPECT_EQ(stats.resultCache.hits, 0u);

    // A cached spec is served without executing.
    const auto cached = service.submit(smallBvSpec(1));
    EXPECT_TRUE(cached.servedFromCache());
    EXPECT_EQ(service.stats().resultCache.hits, 1u);
    EXPECT_EQ(service.stats().executeRuns, 4u);
}

TEST(ExecutionService, NonCanonicalSpecsBypassTheCaches)
{
    // A prebuilt workload instance cannot be canonically keyed:
    // identical submissions run twice, but still agree.
    ExperimentSpec spec;
    spec.workloadInstance = hammer::api::makeQaoaWorkload(
        hammer::graph::ring(6), 1, false, 0, 0, "ring",
        /*compute_optimum=*/false);
    spec.backendSpec.shots = 500;
    EXPECT_FALSE(canonicalExecKey(spec).has_value());
    EXPECT_FALSE(canonicalSpecKey(spec).has_value());

    ExecutionService service;
    const auto a = service.wait(service.submit(spec));
    const auto b = service.wait(service.submit(spec));
    EXPECT_TRUE(identical(a.mitigated, b.mitigated));
    EXPECT_EQ(service.stats().executeRuns, 2u);

    // Explicit models and opaque mitigators are non-canonical too.
    auto custom_model = smallBvSpec(1);
    custom_model.backendSpec.model = hammer::noise::NoiseModel{};
    EXPECT_FALSE(canonicalExecKey(custom_model).has_value());
    auto custom_mitigator = smallBvSpec(1);
    custom_mitigator.mitigator =
        std::make_shared<hammer::api::HammerMitigator>();
    EXPECT_TRUE(canonicalExecKey(custom_mitigator).has_value());
    EXPECT_FALSE(canonicalSpecKey(custom_mitigator).has_value());
}

TEST(ExecutionService, CanonicalKeysSeparateEveryAxis)
{
    const auto base = *canonicalSpecKey(smallBvSpec(1));
    auto other = smallBvSpec(1);
    other.backendSpec.seed = 2;
    EXPECT_NE(base, *canonicalSpecKey(other));
    other = smallBvSpec(1);
    other.backendSpec.shots = 4000;
    EXPECT_NE(base, *canonicalSpecKey(other));
    other = smallBvSpec(1);
    other.workload = "bv:7";
    EXPECT_NE(base, *canonicalSpecKey(other));
    other = smallBvSpec(1);
    other.backend = "trajectory";
    EXPECT_NE(base, *canonicalSpecKey(other));
    other = smallBvSpec(1);
    other.mitigation = "none";
    EXPECT_NE(base, *canonicalSpecKey(other));
    // The service backend's delegate determines the histogram: two
    // service specs differing only there must never share a key.
    other = smallBvSpec(1);
    other.backend = "service";
    auto service_traj = other;
    service_traj.backendSpec.serviceBackend = "trajectory";
    EXPECT_NE(*canonicalSpecKey(other),
              *canonicalSpecKey(service_traj));

    // Threads and labels do not change results, so they must not
    // change the key either.
    other = smallBvSpec(1);
    other.backendSpec.threads = 4;
    other.label = "renamed";
    EXPECT_EQ(base, *canonicalSpecKey(other));
}

TEST(ExecutionService, WaitDerivesPerHandleLabels)
{
    // Coalesced and cached jobs share one Result object; every
    // handle still sees its own label.
    auto first = smallBvSpec(9);
    first.label = "first";
    auto second = smallBvSpec(9);
    second.label = "second";
    auto unlabeled = smallBvSpec(9);

    ExecutionService service;
    const auto a = service.submit(first);
    const auto b = service.submit(second);
    const auto c = service.submit(unlabeled);
    EXPECT_EQ(service.wait(a).label, "first");
    EXPECT_EQ(service.wait(b).label, "second");
    EXPECT_EQ(service.wait(c).label, "bv:6");
    EXPECT_EQ(service.stats().executeRuns, 1u);
}

TEST(ExecutionService, PollAndHandleSemantics)
{
    ExecutionService service;
    const auto handle = service.submit(smallBvSpec(3));
    service.wait(handle); // after wait, poll is definitely true
    EXPECT_TRUE(service.poll(handle));
    EXPECT_GE(handle.id(), 1u);

    ExecutionService::JobHandle invalid;
    EXPECT_FALSE(invalid.valid());
    EXPECT_THROW(service.wait(invalid), std::invalid_argument);
    EXPECT_THROW(service.poll(invalid), std::invalid_argument);
}

TEST(ExecutionService, ValidatesAtSubmitAndSurfacesJobErrorsAtWait)
{
    ExecutionService service;

    // Boundary violations fail fast, from submit() itself.
    auto bad_shots = smallBvSpec(1);
    bad_shots.backendSpec.shots = 0;
    EXPECT_THROW(service.submit(bad_shots), std::invalid_argument);
    EXPECT_THROW(service.submit(ExperimentSpec{}),
                 std::invalid_argument);

    // Registry errors surface when the job runs, i.e. at wait().
    auto bad_backend = smallBvSpec(1);
    bad_backend.backend = "warpdrive";
    const auto handle = service.submit(bad_backend);
    EXPECT_THROW(service.wait(handle), std::invalid_argument);
}

TEST(ExecutionService, RunManyMatchesPipelineRunMany)
{
    const auto specs = mixedSpecs();
    const auto via_pipeline = Pipeline().runMany(specs, 2);
    ExecutionServiceOptions options;
    options.workers = 2;
    ExecutionService service{options};
    const auto via_service = service.runMany(specs);
    ASSERT_EQ(via_pipeline.size(), via_service.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectSameResult(via_pipeline[i], via_service[i],
                         "spec " + std::to_string(i));
}

TEST(ExecutionService, ExposesTheExactCacheUniformly)
{
    // Different shot budgets are different service cache keys, but
    // the 4^n density-matrix evolution must still run only once —
    // the service routes that level of caching through
    // CachedExactSampler's memo rather than duplicating it.
    hammer::noise::CachedExactSampler::clearCache();
    ExecutionService service;
    ExperimentSpec spec;
    spec.workload = "ghz:4";
    spec.backend = "exact-cached";
    spec.backendSpec.shots = 500;
    service.wait(service.submit(spec));
    spec.backendSpec.shots = 900;
    service.wait(service.submit(spec));

    const auto stats = service.stats();
    EXPECT_EQ(stats.executeRuns, 2u) << "distinct shot budgets";
    EXPECT_EQ(stats.exactCache.entries, 1u)
        << "one density-matrix evolution";
    EXPECT_GE(stats.exactCache.hits, 1u);
    EXPECT_EQ(stats.exactCache.misses, 1u);
}

// ---------------------------------------------------------------------------
// Serving protocol (spec lines)
// ---------------------------------------------------------------------------

TEST(SpecLine, ParsesJsonObjects)
{
    const auto parsed = parseSpecLine(
        R"({"workload": "bv:8", "backend": "trajectory", )"
        R"("machine": "machineC", "noise_scale": 1.5, )"
        R"("shots": 1024, "trajectories": 50, "seed": 9, )"
        R"("mitigation": "readout,hammer", "label": "x", )"
        R"("priority": 3})");
    EXPECT_EQ(parsed.spec.workload, "bv:8");
    EXPECT_EQ(parsed.spec.backend, "trajectory");
    EXPECT_EQ(parsed.spec.backendSpec.machine, "machineC");
    EXPECT_DOUBLE_EQ(parsed.spec.backendSpec.noiseScale, 1.5);
    EXPECT_EQ(parsed.spec.backendSpec.shots, 1024);
    EXPECT_EQ(parsed.spec.backendSpec.trajectories, 50);
    EXPECT_EQ(parsed.spec.backendSpec.seed, 9u);
    EXPECT_EQ(parsed.spec.mitigation, "readout,hammer");
    EXPECT_EQ(parsed.spec.label, "x");
    EXPECT_EQ(parsed.priority, 3);
}

TEST(SpecLine, ParsesPositionalCsv)
{
    const auto full = parseSpecLine(
        "bv:5, channel, 512, 3, hammer, machineA, my-label");
    EXPECT_EQ(full.spec.workload, "bv:5");
    EXPECT_EQ(full.spec.backend, "channel");
    EXPECT_EQ(full.spec.backendSpec.shots, 512);
    EXPECT_EQ(full.spec.backendSpec.seed, 3u);
    EXPECT_EQ(full.spec.mitigation, "hammer");
    EXPECT_EQ(full.spec.backendSpec.machine, "machineA");
    EXPECT_EQ(full.spec.label, "my-label");

    // Defaults fill the omitted tail.
    const auto minimal = parseSpecLine("ghz:4");
    EXPECT_EQ(minimal.spec.workload, "ghz:4");
    EXPECT_EQ(minimal.spec.backend, "channel");
    EXPECT_EQ(minimal.spec.backendSpec.shots, 8192);

    // CRLF traffic files leave '\r' on the last field via getline.
    const auto crlf = parseSpecLine("bv:5,channel,512,3,hammer\r");
    EXPECT_EQ(crlf.spec.mitigation, "hammer");

    // Multi-stage chains use '+' in the CSV form (',' separates
    // fields); the JSON form keeps the native comma syntax.
    const auto chained =
        parseSpecLine("bv:5,channel,512,3,readout+hammer,machineB");
    EXPECT_EQ(chained.spec.mitigation, "readout,hammer");
    EXPECT_EQ(chained.spec.backendSpec.machine, "machineB");
}

TEST(SpecLine, RejectsMalformedLines)
{
    EXPECT_THROW(parseSpecLine(""), std::invalid_argument);
    EXPECT_THROW(parseSpecLine("   "), std::invalid_argument);
    EXPECT_THROW(parseSpecLine("{\"shots\": 100}"),
                 std::invalid_argument)
        << "workload is required";
    EXPECT_THROW(parseSpecLine("{\"workload\": \"bv:5\", "
                               "\"warp\": 9}"),
                 std::invalid_argument)
        << "unknown keys must be named, not ignored";
    EXPECT_THROW(parseSpecLine("{\"workload\": \"bv:5\", "
                               "\"shots\": 1.5}"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpecLine("{\"workload\": \"bv:5\", "
                               "\"shots\": 5000000000}"),
                 std::invalid_argument)
        << "out-of-int-range budgets must be rejected, not cast";
    EXPECT_THROW(parseSpecLine("bv:5,channel,notanumber"),
                 std::invalid_argument);
    EXPECT_THROW(parseSpecLine("a,b,1,1,c,d,e,f"),
                 std::invalid_argument)
        << "too many CSV fields";
    EXPECT_THROW(parseSpecLine("{\"workload\": \"bv:5\""),
                 std::invalid_argument)
        << "truncated JSON";
    EXPECT_THROW(parseSpecLine("{\"workload\": \"bv:5\", "
                               "\"shots\": 100, \"shots\": 200}"),
                 std::invalid_argument)
        << "duplicate keys must not silently last-one-win";

    // Type errors name the offending key.
    try {
        parseSpecLine("{\"workload\": \"bv:5\", "
                      "\"shots\": \"many\"}");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &error) {
        EXPECT_NE(std::string(error.what()).find("shots"),
                  std::string::npos)
            << error.what();
    }
}

} // namespace
