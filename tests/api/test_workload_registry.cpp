/**
 * @file
 * WorkloadRegistry: spec parsing, round-trips, and boundary
 * validation (unknown keys must fail loudly at the API edge).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "api/workload.hpp"

namespace {

using hammer::api::Workload;
using hammer::api::WorkloadRegistry;
using hammer::common::Bits;
using hammer::common::Rng;

TEST(WorkloadRegistry, GlobalKnowsTheBuiltinFamilies)
{
    const auto &registry = WorkloadRegistry::global();
    EXPECT_TRUE(registry.contains("bv"));
    EXPECT_TRUE(registry.contains("ghz"));
    EXPECT_TRUE(registry.contains("qaoa"));
    EXPECT_TRUE(registry.contains("mirror"));
    EXPECT_FALSE(registry.contains("nope"));
    EXPECT_EQ(registry.families().size(), 4u);
}

TEST(WorkloadRegistry, BvFixedKeyRoundTrip)
{
    Rng rng(1);
    const Workload w =
        WorkloadRegistry::global().make("bv:6:101101", rng);
    EXPECT_EQ(w.spec, "bv:6:101101");
    EXPECT_EQ(w.family, "bv");
    EXPECT_EQ(w.measuredQubits, 6);
    EXPECT_EQ(w.key, Bits{0b101101});
    ASSERT_EQ(w.correctOutcomes.size(), 1u);
    EXPECT_EQ(w.correctOutcomes[0], Bits{0b101101});
    EXPECT_TRUE(w.isCorrect(0b101101));
    EXPECT_FALSE(w.isCorrect(0b101100));
    // BV uses one ancilla beyond the measured width.
    EXPECT_EQ(w.routed.circuit.numQubits(), 7);
}

TEST(WorkloadRegistry, BvRandomKeyIsDeterministicInTheRng)
{
    Rng rng_a(42), rng_b(42);
    const Workload a = WorkloadRegistry::global().make("bv:8", rng_a);
    const Workload b = WorkloadRegistry::global().make("bv:8", rng_b);
    EXPECT_EQ(a.key, b.key);
    EXPECT_NE(a.key, 0u) << "the empty key is excluded";
}

TEST(WorkloadRegistry, GhzHasTwoCorrectOutcomes)
{
    Rng rng(1);
    const Workload w = WorkloadRegistry::global().make("ghz:5", rng);
    ASSERT_EQ(w.correctOutcomes.size(), 2u);
    EXPECT_TRUE(w.isCorrect(0));
    EXPECT_TRUE(w.isCorrect(0b11111));
    EXPECT_EQ(w.measuredQubits, 5);
}

TEST(WorkloadRegistry, QaoaShorthandDefaultsToThreeRegular)
{
    Rng rng(3);
    const Workload w =
        WorkloadRegistry::global().make("qaoa:8:2", rng);
    EXPECT_EQ(w.family, "qaoa");
    EXPECT_EQ(w.layers, 2);
    EXPECT_EQ(w.graph.numVertices(), 8);
    EXPECT_EQ(w.metadata.at("qaoa_family"), "3reg");
    EXPECT_FALSE(w.correctOutcomes.empty())
        << "small instances get a brute-forced optimum";
    EXPECT_LT(w.minCost, 0.0);
}

TEST(WorkloadRegistry, QaoaGridRoutesSwapFree)
{
    Rng rng(3);
    const Workload w =
        WorkloadRegistry::global().make("qaoa:grid:8:1", rng);
    EXPECT_EQ(w.metadata.at("qaoa_family"), "grid");
    EXPECT_EQ(w.routed.addedSwaps, 0)
        << "grid instances are hardware-native on a grid device";
}

TEST(WorkloadRegistry, MirrorRecordsEntanglingHalf)
{
    Rng rng(9);
    const Workload w =
        WorkloadRegistry::global().make("mirror:6:4", rng);
    EXPECT_EQ(w.measuredQubits, 6);
    ASSERT_TRUE(w.entanglingHalf.has_value());
    EXPECT_EQ(w.entanglingHalf->numQubits(), 6);
    ASSERT_EQ(w.correctOutcomes.size(), 1u);
    EXPECT_EQ(w.correctOutcomes[0], 0u);
    EXPECT_EQ(w.metadata.at("depth"), "4");
}

TEST(WorkloadRegistry, UnknownFamilyThrowsWithTheKnownList)
{
    Rng rng(1);
    try {
        WorkloadRegistry::global().make("warp:4", rng);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("warp"), std::string::npos);
        EXPECT_NE(message.find("bv"), std::string::npos)
            << "the error should list the known families";
    }
}

TEST(WorkloadRegistry, MalformedSpecsThrow)
{
    Rng rng(1);
    const auto &registry = WorkloadRegistry::global();
    EXPECT_THROW(registry.make("bv:0", rng), std::invalid_argument);
    EXPECT_THROW(registry.make("bv:-3", rng), std::invalid_argument);
    EXPECT_THROW(registry.make("bv:six", rng), std::invalid_argument);
    EXPECT_THROW(registry.make("bv:64", rng), std::invalid_argument)
        << "beyond the simulator width limit";
    EXPECT_THROW(registry.make("bv:4:10", rng), std::invalid_argument)
        << "fixed key must have exactly n digits";
    EXPECT_THROW(registry.make("bv:4:10x1", rng),
                 std::invalid_argument);
    EXPECT_THROW(registry.make("ghz", rng), std::invalid_argument);
    EXPECT_THROW(registry.make("qaoa:8", rng), std::invalid_argument);
    EXPECT_THROW(registry.make("qaoa:hex:8:2", rng),
                 std::invalid_argument);
    EXPECT_THROW(registry.make("mirror:0", rng),
                 std::invalid_argument);
}

TEST(WorkloadRegistry, CustomFamiliesPlugIn)
{
    hammer::api::WorkloadRegistry registry;
    registry.add("ghz2", "ghz2:<n>",
                 [](const std::vector<std::string> &args, Rng &) {
                     return hammer::api::makeGhzWorkload(
                         std::stoi(args.at(0)));
                 });
    Rng rng(1);
    const Workload w = registry.make("ghz2:4", rng);
    EXPECT_EQ(w.measuredQubits, 4);
    EXPECT_THROW(registry.add("ghz2", "dup", nullptr),
                 std::invalid_argument)
        << "duplicate registration must fail";
}

TEST(Workload, ConstructorValidatesMeasuredQubits)
{
    hammer::sim::Circuit circuit(3);
    circuit.h(0);
    EXPECT_THROW(
        Workload("custom", circuit,
                 hammer::circuits::CouplingMap::full(3), 0),
        std::invalid_argument);
    EXPECT_THROW(
        Workload("custom", circuit,
                 hammer::circuits::CouplingMap::full(3), 4),
        std::invalid_argument);
    EXPECT_NO_THROW(
        Workload("custom", circuit,
                 hammer::circuits::CouplingMap::full(3), 3));
}

} // namespace
