/**
 * @file
 * JSON layer: writer escaping, parser correctness, writer->parser
 * round trips, and the Result golden-file regression (satellite of
 * the serving PR: serialized results must parse back cleanly,
 * adversarial strings included).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "api/json.hpp"
#include "api/pipeline.hpp"
#include "api/service.hpp"

namespace {

using hammer::api::JsonValue;
using hammer::api::JsonWriter;
using hammer::api::jsonQuote;
using hammer::api::parseJson;
using hammer::api::parseSpecLine;
using hammer::api::Result;
using hammer::core::Distribution;

/** The adversarial label every serialization test reuses. */
const char *const kTrickyLabel =
    "golden \"quoted\" back\\slash\ttab\nnewline \x01 control";

/**
 * A fixed, libm-free Result: every double is an exact binary
 * fraction, so its JSON rendering is byte-stable across compilers
 * and platforms (the precondition for the golden file).
 */
Result
goldenResult()
{
    Result result;
    result.label = kTrickyLabel;
    result.workloadSpec = "bv:3";
    result.family = "bv";
    result.backendName = "channel";
    result.machine = "machineA";
    result.mitigationName = "hammer";
    result.measuredQubits = 3;
    result.shots = 100;
    result.seed = 7;

    Distribution raw(3);
    raw.set(0b101, 0.5);
    raw.set(0b100, 0.25);
    raw.set(0b001, 0.125);
    raw.set(0b111, 0.125);
    result.raw = raw;
    Distribution mitigated(3);
    mitigated.set(0b101, 0.75);
    mitigated.set(0b100, 0.25);
    result.mitigated = mitigated;

    result.hammerStats.uniqueOutcomes = 4;
    result.hammerStats.maxDistance = 1;
    result.hammerStats.pairOperations = 12;
    result.timings = {{"workload", 0.5}, {"sample", 0.25},
                      {"mitigate", 0.125},
                      {"mitigate:hammer", 0.0625}};
    result.pstRaw = 0.5;
    result.pstMitigated = 0.75;
    result.istRaw = 2.0;
    result.istMitigated = 4.0;
    // NaN renders as null and must parse back as null.
    result.ehdRaw = std::numeric_limits<double>::quiet_NaN();
    result.ehdMitigated = 0.0625;
    return result;
}

TEST(JsonParser, ParsesScalarsAndContainers)
{
    const JsonValue doc = parseJson(
        R"({"s": "text", "i": 42, "f": -1.5e2, "t": true, )"
        R"("n": null, "a": [1, "two", {"three": 3}], "o": {}})");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("s").asString(), "text");
    EXPECT_DOUBLE_EQ(doc.at("i").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(doc.at("f").asNumber(), -150.0);
    EXPECT_TRUE(doc.at("t").asBool());
    EXPECT_TRUE(doc.at("n").isNull());
    ASSERT_EQ(doc.at("a").items().size(), 3u);
    EXPECT_EQ(doc.at("a").items()[1].asString(), "two");
    EXPECT_DOUBLE_EQ(
        doc.at("a").items()[2].at("three").asNumber(), 3.0);
    EXPECT_TRUE(doc.at("o").members().empty());
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_THROW(doc.at("missing"), std::invalid_argument);
    EXPECT_THROW(doc.at("s").asNumber(), std::invalid_argument);
}

TEST(JsonParser, DecodesEscapes)
{
    const JsonValue doc = parseJson(
        R"(["a\"b", "c\\d", "e\nf", "\t", "\u0041", "\u00e9", )"
        R"("\ud83d\ude00", "\u0001"])");
    const auto &items = doc.items();
    EXPECT_EQ(items[0].asString(), "a\"b");
    EXPECT_EQ(items[1].asString(), "c\\d");
    EXPECT_EQ(items[2].asString(), "e\nf");
    EXPECT_EQ(items[3].asString(), "\t");
    EXPECT_EQ(items[4].asString(), "A");
    EXPECT_EQ(items[5].asString(), "\xC3\xA9");
    EXPECT_EQ(items[6].asString(), "\xF0\x9F\x98\x80");
    EXPECT_EQ(items[7].asString(), std::string(1, '\x01'));
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,", "\"unterminated", "{\"a\" 1}",
          "{\"a\": 1} trailing", "nul", "[1 2]", "\"\\q\"",
          "\"\\ud83d\"", "\"\\udc00\"", "--5"})
        EXPECT_THROW(parseJson(bad), std::invalid_argument) << bad;
}

TEST(JsonParser, BoundsNestingDepth)
{
    // The parser fronts untrusted --serve traffic: pathological
    // nesting must throw, not overflow the stack.
    const std::string deep(100000, '[');
    EXPECT_THROW(parseJson(deep), std::invalid_argument);
    // Reasonable nesting still parses.
    std::string ok;
    for (int i = 0; i < 100; ++i)
        ok += '[';
    ok += '1';
    for (int i = 0; i < 100; ++i)
        ok += ']';
    EXPECT_NO_THROW(parseJson(ok));
}

TEST(JsonParser, MalformedInputFuzzTable)
{
    // Table-driven fuzz over the hostile classes the chaos flood
    // exercises at volume: each case states whether the document
    // must parse or must throw the parser's one typed error.
    struct Case
    {
        const char *document;
        bool valid;
    };
    const Case cases[] = {
        // Truncated documents.
        {"{\"a\": ", false},
        {"{\"a\": 1", false},
        {"[1, 2", false},
        {"\"trunc", false},
        {"{\"a\": \"b", false},
        // Surrogate pairs: a valid pair decodes, every lone or
        // malformed half throws.
        {"\"\\ud83d\\ude00\"", true},
        {"\"\\ud800\"", false},
        {"\"\\udc00 first\"", false},
        {"\"\\ud800\\ud800\"", false},
        {"\"\\ud800x\"", false},
        {"\"\\ude00\\ud83d\"", false}, // reversed pair
        // Huge and degenerate numbers: syntactically valid JSON
        // numbers parse (range policy is the spec layer's job);
        // non-JSON spellings throw.
        {"1e999", true},
        {"-1e999", true},
        {"5000000000", true},
        {"0.0000000000000000000000001", true},
        {"1e", false},
        {"0x10", false},
        {"Infinity", false},
        {"NaN", false},
        // Duplicate keys are legal at the JSON layer (last wins is
        // left to the consumer; the spec parser rejects them below).
        {"{\"a\": 1, \"a\": 2}", true},
    };
    for (const Case &c : cases) {
        if (c.valid)
            EXPECT_NO_THROW(parseJson(c.document)) << c.document;
        else
            EXPECT_THROW(parseJson(c.document),
                         std::invalid_argument)
                << c.document;
    }
}

TEST(SpecLineParser, MalformedSpecFuzzTable)
{
    // The same hostile classes one layer up, where budget range
    // checks and the duplicate-key rejection live.
    const char *const rejected[] = {
        // Truncated / malformed carriers.
        "{\"workload\": \"bv:5\",",
        "{\"workload\": \"bv:5\", \"shots\": }",
        // Lone surrogate halves inside a field.
        "{\"workload\": \"bv:5\", \"label\": \"\\ud800\"}",
        "{\"workload\": \"bv:5\", \"label\": \"\\udc00\"}",
        // Huge numbers overflow the int budgets; fractions and
        // non-positives violate them.
        "{\"workload\": \"bv:5\", \"shots\": 5000000000}",
        "{\"workload\": \"bv:5\", \"shots\": 1e999}",
        "{\"workload\": \"bv:5\", \"shots\": 1.5}",
        "{\"workload\": \"bv:5\", \"shots\": 0}",
        "{\"workload\": \"bv:5\", \"seed\": -1}",
        "{\"workload\": \"bv:5\", \"priority\": 1e20}",
        // Duplicate and unknown keys.
        "{\"workload\": \"bv:5\", \"shots\": 1, \"shots\": 2}",
        "{\"workload\": \"bv:5\", \"workload\": \"ghz:4\"}",
        "{\"workload\": \"bv:5\", \"warpdrive\": 9}",
        // Required key missing.
        "{\"shots\": 100}",
        "{}",
    };
    for (const char *line : rejected)
        EXPECT_THROW(parseSpecLine(line), std::invalid_argument)
            << line;

    // A valid surrogate pair in a label survives end to end.
    const auto parsed = parseSpecLine(
        "{\"workload\": \"bv:5\", \"label\": \"\\ud83d\\ude00\"}");
    EXPECT_EQ(parsed.spec.label, "\xF0\x9F\x98\x80");
}

TEST(JsonRoundTrip, WriterOutputParsesBack)
{
    JsonWriter json;
    json.beginObject();
    json.key("tricky").value(kTrickyLabel);
    json.key("nan").value(std::nan(""));
    json.key("count").value(std::uint64_t{18446744073709551615ull});
    json.key("nested").beginArray();
    json.value(0.1);
    json.value(false);
    json.endArray();
    json.endObject();

    const JsonValue doc = parseJson(json.str());
    EXPECT_EQ(doc.at("tricky").asString(), kTrickyLabel)
        << "quotes, backslashes and control chars must survive";
    EXPECT_TRUE(doc.at("nan").isNull());
    EXPECT_DOUBLE_EQ(doc.at("nested").items()[0].asNumber(), 0.1)
        << "17-digit rendering must round-trip doubles exactly";
    EXPECT_FALSE(doc.at("nested").items()[1].asBool());
}

TEST(JsonRoundTrip, ResultSerializationParsesBack)
{
    const Result result = goldenResult();
    const JsonValue doc = parseJson(result.json());

    EXPECT_EQ(doc.at("label").asString(), kTrickyLabel);
    EXPECT_EQ(doc.at("workload").asString(), "bv:3");
    EXPECT_DOUBLE_EQ(doc.at("shots").asNumber(), 100.0);
    EXPECT_DOUBLE_EQ(doc.at("seed").asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(doc.at("metrics").at("pst_raw").asNumber(),
                     0.5);
    EXPECT_TRUE(doc.at("metrics").at("ehd_raw").isNull());
    EXPECT_DOUBLE_EQ(
        doc.at("timings").at("mitigate:hammer").asNumber(), 0.0625);

    const auto &raw = doc.at("histogram").at("raw").items();
    ASSERT_EQ(raw.size(), 4u);
    EXPECT_EQ(raw[0].at("outcome").asString(), "101");
    EXPECT_DOUBLE_EQ(raw[0].at("probability").asNumber(), 0.5);
    double total = 0.0;
    for (const auto &entry : raw)
        total += entry.at("probability").asNumber();
    EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(JsonRoundTrip, GoldenFileStaysByteExact)
{
    // The golden file pins the exact serialization of a Result whose
    // doubles are binary fractions: any drift in escaping, field
    // order or number rendering shows up as a diff here.
    const std::string path =
        std::string(HAMMER_TEST_DATA_DIR) + "/result_golden.json";
    std::ifstream file(path, std::ios::binary);
    ASSERT_TRUE(file.is_open()) << "missing golden file " << path;
    std::ostringstream golden;
    golden << file.rdbuf();

    std::ostringstream actual;
    goldenResult().writeJson(actual);
    EXPECT_EQ(actual.str(), golden.str());

    // And the pinned bytes parse cleanly.
    const JsonValue doc = parseJson(golden.str());
    EXPECT_EQ(doc.at("label").asString(), kTrickyLabel);
    EXPECT_EQ(doc.at("mitigation").asString(), "hammer");
}

} // namespace
