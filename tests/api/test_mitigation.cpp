/**
 * @file
 * Mitigator adapters and MitigationChain: equivalence with the
 * underlying library calls, chain composition and order sensitivity,
 * and spec parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "api/mitigation.hpp"
#include "core/hammer.hpp"
#include "mitigation/readout_mitigation.hpp"
#include "noise/channel_sampler.hpp"

namespace {

using hammer::api::HammerMitigator;
using hammer::api::MitigationChain;
using hammer::api::MitigationContext;
using hammer::api::mitigationChainFromSpec;
using hammer::api::ReadoutMitigator;
using hammer::common::Bits;
using hammer::common::Rng;
using hammer::core::Distribution;

/** A clustered BV-like noisy histogram to post-process. */
Distribution
sampleHistogram()
{
    Rng rng(7);
    const auto workload =
        hammer::api::makeBvWorkload(8, 0b11111111);
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("machineC").scaled(2.0));
    return sampler.sample(workload.routed, 8, 6000, rng);
}

bool
identical(const Distribution &a, const Distribution &b)
{
    if (a.numBits() != b.numBits() || a.support() != b.support())
        return false;
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        if (a.entries()[i].outcome != b.entries()[i].outcome ||
            a.entries()[i].probability != b.entries()[i].probability)
            return false;
    }
    return true;
}

TEST(Mitigator, HammerMatchesDirectReconstruction)
{
    const Distribution noisy = sampleHistogram();
    MitigationContext ctx;
    EXPECT_TRUE(identical(HammerMitigator().apply(noisy, ctx),
                          hammer::core::reconstruct(noisy)));
    EXPECT_TRUE(identical(
        HammerMitigator({}, 1, /*fast=*/true).apply(noisy, ctx),
        hammer::core::reconstructFast(noisy)));
    EXPECT_TRUE(identical(
        HammerMitigator({}, 3, false).apply(noisy, ctx),
        hammer::core::reconstructIterative(noisy, 3)));
}

TEST(Mitigator, HammerFillsStatsThroughTheContext)
{
    const Distribution noisy = sampleHistogram();
    hammer::core::HammerStats stats;
    MitigationContext ctx;
    ctx.stats = &stats;
    HammerMitigator().apply(noisy, ctx);
    EXPECT_EQ(stats.uniqueOutcomes, noisy.support());
    EXPECT_GT(stats.pairOperations, 0u);
}

TEST(Mitigator, ReadoutMatchesDirectMitigation)
{
    const Distribution noisy = sampleHistogram();
    const auto model = hammer::noise::machinePreset("machineC");
    MitigationContext ctx;
    ctx.model = model;
    EXPECT_TRUE(
        identical(ReadoutMitigator().apply(noisy, ctx),
                  hammer::mitigation::mitigateReadout(noisy, model)));
}

TEST(Mitigator, EnsembleRequiresAFullPipelineContext)
{
    const Distribution noisy = sampleHistogram();
    MitigationContext ctx; // no workload / sampler / rng
    EXPECT_THROW(
        hammer::api::EnsembleMitigator().apply(noisy, ctx),
        std::invalid_argument);
}

TEST(MitigationChain, EmptyChainIsIdentityAndNamedNone)
{
    const Distribution noisy = sampleHistogram();
    MitigationContext ctx;
    MitigationChain chain;
    EXPECT_TRUE(chain.empty());
    EXPECT_EQ(chain.name(), "none");
    EXPECT_TRUE(identical(chain.apply(noisy, ctx), noisy));
}

TEST(MitigationChain, OrderIsSignificant)
{
    // readout-then-hammer (the paper's "both" configuration) and
    // hammer-then-readout are different pipelines and must produce
    // different histograms on a readout-heavy machine.
    const Distribution noisy = sampleHistogram();
    const auto model =
        hammer::noise::machinePreset("machineC").scaled(2.0);

    MitigationContext ctx;
    ctx.model = model;
    const auto ro_then_ham =
        mitigationChainFromSpec("readout,hammer").apply(noisy, ctx);
    const auto ham_then_ro =
        mitigationChainFromSpec("hammer,readout").apply(noisy, ctx);

    EXPECT_FALSE(identical(ro_then_ham, ham_then_ro));

    // And readout-then-hammer must equal composing the library calls
    // by hand in that order.
    const auto by_hand = hammer::core::reconstruct(
        hammer::mitigation::mitigateReadout(noisy, model));
    EXPECT_TRUE(identical(ro_then_ham, by_hand));
}

TEST(MitigatorRegistry, GlobalKnowsTheBuiltinStages)
{
    const auto &registry =
        hammer::api::MitigatorRegistry::global();
    EXPECT_TRUE(registry.contains("hammer"));
    EXPECT_TRUE(registry.contains("hammer-fast"));
    EXPECT_TRUE(registry.contains("readout"));
    EXPECT_TRUE(registry.contains("ensemble"));
    EXPECT_FALSE(registry.contains("sorcery"));
    EXPECT_EQ(registry.names().size(), 4u);
    EXPECT_NE(registry.usage().find("hammer[:<iterations>]"),
              std::string::npos);
}

TEST(MitigatorRegistry, DuplicateRegistrationThrows)
{
    auto registry = hammer::api::defaultMitigatorRegistry();
    try {
        registry.add("hammer", "dup",
                     [](const std::vector<std::string> &) {
                         return std::make_shared<HammerMitigator>();
                     });
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &error) {
        EXPECT_NE(std::string(error.what()).find("hammer"),
                  std::string::npos)
            << "the message must name the duplicate stage";
    }
    // Names that would break spec parsing are rejected too.
    EXPECT_THROW(registry.add("bad:name", "u",
                              [](const std::vector<std::string> &) {
                                  return std::make_shared<
                                      HammerMitigator>();
                              }),
                 std::invalid_argument);
}

TEST(MitigatorRegistry, CustomStagesPlugIn)
{
    auto registry = hammer::api::defaultMitigatorRegistry();
    registry.add("identity", "identity",
                 [](const std::vector<std::string> &) {
                     return std::make_shared<MitigationChain>();
                 });
    const auto stage = registry.make("identity");
    ASSERT_NE(stage, nullptr);
    EXPECT_EQ(stage->name(), "none");

    // Unknown stages name the known list.
    try {
        registry.make("sorcery");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("sorcery"), std::string::npos);
        EXPECT_NE(message.find("identity"), std::string::npos);
    }
}

TEST(MitigationChain, SpecParsing)
{
    EXPECT_EQ(mitigationChainFromSpec("").size(), 0u);
    EXPECT_EQ(mitigationChainFromSpec("none").size(), 0u);
    EXPECT_EQ(mitigationChainFromSpec("hammer").name(), "hammer");
    EXPECT_EQ(mitigationChainFromSpec("hammer-fast").name(),
              "hammer-fast");
    EXPECT_EQ(mitigationChainFromSpec("hammer:2").name(), "hammer:2");
    EXPECT_EQ(mitigationChainFromSpec("readout,hammer").name(),
              "readout+hammer");
    EXPECT_EQ(
        mitigationChainFromSpec("ensemble:4,readout,hammer").size(),
        3u);

    EXPECT_THROW(mitigationChainFromSpec("sorcery"),
                 std::invalid_argument);
    EXPECT_THROW(mitigationChainFromSpec("hammer,,readout"),
                 std::invalid_argument);
    EXPECT_THROW(mitigationChainFromSpec("hammer:0"),
                 std::invalid_argument);
    EXPECT_THROW(mitigationChainFromSpec("hammer:1:2"),
                 std::invalid_argument);
}

} // namespace
