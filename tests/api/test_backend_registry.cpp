/**
 * @file
 * BackendRegistry: factory lookup, spec validation at the API
 * boundary, and noise-model resolution.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "api/backend.hpp"
#include "api/workload.hpp"
#include "noise/exact_sampler.hpp"

namespace {

using hammer::api::BackendRegistry;
using hammer::api::BackendSpec;
using hammer::api::resolveNoiseModel;
using hammer::api::validateBackendSpec;
using hammer::common::Rng;

TEST(BackendRegistry, GlobalKnowsTheBuiltinBackends)
{
    const auto &registry = BackendRegistry::global();
    EXPECT_TRUE(registry.contains("trajectory"));
    EXPECT_TRUE(registry.contains("channel"));
    EXPECT_TRUE(registry.contains("exact"));
    EXPECT_TRUE(registry.contains("exact-cached"));
    EXPECT_TRUE(registry.contains("service"));
    EXPECT_TRUE(registry.contains("auto"));
    EXPECT_FALSE(registry.contains("remote"));
    EXPECT_EQ(registry.names().size(), 6u);
}

TEST(BackendRegistry, DuplicateRegistrationThrows)
{
    auto registry = hammer::api::defaultBackendRegistry();
    try {
        registry.add("channel", [](const BackendSpec &) {
            return std::unique_ptr<hammer::noise::NoisySampler>();
        });
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &error) {
        EXPECT_NE(std::string(error.what()).find("channel"),
                  std::string::npos)
            << "the message must name the duplicate backend";
    }
}

TEST(BackendRegistry, BuiltBackendsSample)
{
    Rng rng(1);
    const auto workload = hammer::api::makeGhzWorkload(3);
    for (const auto &name : BackendRegistry::global().names()) {
        BackendSpec spec;
        spec.trajectories = 5;
        auto sampler = BackendRegistry::global().make(name, spec);
        ASSERT_NE(sampler, nullptr) << name;
        const auto dist = sampler->sample(workload.routed, 3, 200,
                                          rng);
        EXPECT_TRUE(dist.normalized()) << name;
        EXPECT_EQ(dist.numBits(), 3) << name;
    }
}

TEST(BackendRegistry, CachedExactMatchesExactBitForBit)
{
    // The cached backend must be a pure memoisation: same RNG state,
    // same histogram as the exact backend, for every shot budget.
    hammer::noise::CachedExactSampler::clearCache();
    const auto workload = hammer::api::makeGhzWorkload(4);
    BackendSpec spec;
    for (int shots : {64, 256}) {
        Rng exact_rng(7), cached_rng(7);
        const auto exact =
            BackendRegistry::global().make("exact", spec);
        const auto cached =
            BackendRegistry::global().make("exact-cached", spec);
        const auto a =
            exact->sample(workload.routed, 4, shots, exact_rng);
        const auto b =
            cached->sample(workload.routed, 4, shots, cached_rng);
        ASSERT_EQ(a.support(), b.support()) << shots << " shots";
        for (const auto &e : a.entries())
            EXPECT_DOUBLE_EQ(e.probability, b.probability(e.outcome))
                << shots << " shots";
    }
}

TEST(BackendRegistry, CachedExactReusesTheDensityMatrixEvolution)
{
    using hammer::noise::CachedExactSampler;
    CachedExactSampler::clearCache();
    const auto workload = hammer::api::makeGhzWorkload(4);
    BackendSpec spec;
    Rng rng(11);
    const auto sampler =
        BackendRegistry::global().make("exact-cached", spec);

    sampler->sample(workload.routed, 4, 100, rng);
    EXPECT_EQ(CachedExactSampler::cacheSize(), 1u);
    EXPECT_EQ(CachedExactSampler::cacheHits(), 0u);

    // Further budgets resample the cached distribution.
    sampler->sample(workload.routed, 4, 500, rng);
    sampler->sampleBatch(workload.routed, 4, 2000, rng, 2);
    EXPECT_EQ(CachedExactSampler::cacheSize(), 1u);
    EXPECT_EQ(CachedExactSampler::cacheHits(), 2u);

    // A different measured width is a different key.
    sampler->sample(workload.routed, 3, 100, rng);
    EXPECT_EQ(CachedExactSampler::cacheSize(), 2u);
}

TEST(BackendRegistry, CachedExactSampleBatchDeterministicAcrossThreads)
{
    hammer::noise::CachedExactSampler::clearCache();
    const auto workload = hammer::api::makeGhzWorkload(4);
    BackendSpec spec;
    const auto sampler =
        BackendRegistry::global().make("exact-cached", spec);

    std::vector<hammer::core::Distribution> results;
    for (int threads : {1, 2, 4}) {
        Rng rng(23);
        results.push_back(sampler->sampleBatch(workload.routed, 4,
                                               5000, rng, threads));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        ASSERT_EQ(results[0].support(), results[i].support());
        for (const auto &e : results[0].entries())
            EXPECT_DOUBLE_EQ(e.probability,
                             results[i].probability(e.outcome));
    }
}

TEST(BackendRegistry, ServiceBackendMatchesItsDelegateBitForBit)
{
    // The service backend only adds queueing: its histograms must be
    // byte-for-byte the delegate backend's.
    const auto workload = hammer::api::makeGhzWorkload(4);
    BackendSpec spec;
    spec.serviceBackend = "channel";
    for (int threads : {1, 2}) {
        Rng direct_rng(5), served_rng(5);
        const auto direct =
            BackendRegistry::global().make("channel", spec);
        const auto served =
            BackendRegistry::global().make("service", spec);
        const auto a = direct->sampleBatch(workload.routed, 4, 2000,
                                           direct_rng, threads);
        const auto b = served->sampleBatch(workload.routed, 4, 2000,
                                           served_rng, threads);
        ASSERT_EQ(a.support(), b.support()) << threads << " threads";
        for (const auto &e : a.entries())
            EXPECT_DOUBLE_EQ(e.probability, b.probability(e.outcome))
                << threads << " threads";
    }
}

TEST(BackendRegistry, ServiceBackendRejectsSelfRecursion)
{
    BackendSpec spec;
    spec.serviceBackend = "service";
    EXPECT_THROW(BackendRegistry::global().make("service", spec),
                 std::invalid_argument);
    spec.serviceBackend = "";
    EXPECT_THROW(BackendRegistry::global().make("service", spec),
                 std::invalid_argument);
}

TEST(BackendRegistry, UnknownBackendThrowsWithTheKnownList)
{
    try {
        BackendRegistry::global().make("warpdrive", {});
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("warpdrive"), std::string::npos);
        EXPECT_NE(message.find("channel"), std::string::npos);
    }
}

TEST(BackendRegistry, SpecValidationRejectsBadBudgets)
{
    BackendSpec spec;
    spec.shots = 0;
    EXPECT_THROW(validateBackendSpec(spec), std::invalid_argument);
    spec.shots = -8;
    EXPECT_THROW(validateBackendSpec(spec), std::invalid_argument);
    spec = {};
    spec.trajectories = 0;
    EXPECT_THROW(validateBackendSpec(spec), std::invalid_argument);
    spec = {};
    spec.threads = -1;
    EXPECT_THROW(validateBackendSpec(spec), std::invalid_argument);
    spec = {};
    spec.noiseScale = -0.5;
    EXPECT_THROW(validateBackendSpec(spec), std::invalid_argument);
    spec = {};
    EXPECT_NO_THROW(validateBackendSpec(spec));

    // make() validates before instantiating.
    spec.shots = 0;
    EXPECT_THROW(BackendRegistry::global().make("channel", spec),
                 std::invalid_argument);
}

TEST(BackendRegistry, NoiseModelResolution)
{
    BackendSpec spec;
    spec.machine = "machineA";
    spec.noiseScale = 2.0;
    const auto scaled = resolveNoiseModel(spec);
    const auto preset = hammer::noise::machinePreset("machineA");
    EXPECT_DOUBLE_EQ(scaled.p2q, preset.p2q * 2.0);

    // An explicit model wins over preset + scale.
    hammer::noise::NoiseModel custom;
    custom.p2q = 0.123;
    spec.model = custom;
    EXPECT_DOUBLE_EQ(resolveNoiseModel(spec).p2q, 0.123);

    // Unknown presets fail at the boundary.
    BackendSpec unknown;
    unknown.machine = "machineZ";
    EXPECT_THROW(resolveNoiseModel(unknown), std::invalid_argument);
}

} // namespace
