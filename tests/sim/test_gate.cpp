/**
 * @file
 * Unit tests for gate definitions: unitarity, inverses, matrices.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/gate.hpp"

namespace {

using namespace hammer::sim;

/** || M M^dagger - I ||_max for a 2x2 matrix. */
double
unitarityDefect(const Mat2 &m)
{
    // Rows of M.
    const Amp r0[2] = {m[0], m[1]};
    const Amp r1[2] = {m[2], m[3]};
    Amp prod[4];
    prod[0] = r0[0] * std::conj(r0[0]) + r0[1] * std::conj(r0[1]);
    prod[1] = r0[0] * std::conj(r1[0]) + r0[1] * std::conj(r1[1]);
    prod[2] = r1[0] * std::conj(r0[0]) + r1[1] * std::conj(r0[1]);
    prod[3] = r1[0] * std::conj(r1[0]) + r1[1] * std::conj(r1[1]);
    double defect = 0.0;
    defect = std::max(defect, std::abs(prod[0] - Amp(1.0)));
    defect = std::max(defect, std::abs(prod[1]));
    defect = std::max(defect, std::abs(prod[2]));
    defect = std::max(defect, std::abs(prod[3] - Amp(1.0)));
    return defect;
}

TEST(Gate, SingleQubitMatricesAreUnitary)
{
    const GateKind fixed[] = {GateKind::H, GateKind::X, GateKind::Y,
                              GateKind::Z, GateKind::S, GateKind::Sdg,
                              GateKind::T, GateKind::Tdg};
    for (GateKind kind : fixed) {
        EXPECT_LT(unitarityDefect(gateMatrix(kind)), 1e-12)
            << gateName(kind);
    }
    for (double theta : {0.1, 0.7, 2.3, -1.1}) {
        EXPECT_LT(unitarityDefect(gateMatrix(GateKind::Rx, theta)), 1e-12);
        EXPECT_LT(unitarityDefect(gateMatrix(GateKind::Ry, theta)), 1e-12);
        EXPECT_LT(unitarityDefect(gateMatrix(GateKind::Rz, theta)), 1e-12);
    }
}

TEST(Gate, HadamardSquaredIsIdentity)
{
    const Mat2 h = gateMatrix(GateKind::H);
    const Amp top_left = h[0] * h[0] + h[1] * h[2];
    const Amp off = h[0] * h[1] + h[1] * h[3];
    EXPECT_NEAR(std::abs(top_left - Amp(1.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(off), 0.0, 1e-12);
}

TEST(Gate, TwoQubitKindClassification)
{
    EXPECT_TRUE(isTwoQubitKind(GateKind::CX));
    EXPECT_TRUE(isTwoQubitKind(GateKind::CZ));
    EXPECT_TRUE(isTwoQubitKind(GateKind::Swap));
    EXPECT_FALSE(isTwoQubitKind(GateKind::H));
    EXPECT_FALSE(isTwoQubitKind(GateKind::Rz));
}

TEST(Gate, InverseOfSelfInverseGates)
{
    for (GateKind kind : {GateKind::H, GateKind::X, GateKind::CX,
                          GateKind::CZ, GateKind::Swap}) {
        Gate g{kind, 0, isTwoQubitKind(kind) ? 1 : -1};
        EXPECT_EQ(g.inverse().kind, kind);
    }
}

TEST(Gate, InverseOfPhaseGates)
{
    const Gate s{GateKind::S, 0};
    const Gate sdg{GateKind::Sdg, 0};
    const Gate t{GateKind::T, 0};
    const Gate tdg{GateKind::Tdg, 0};
    EXPECT_EQ(s.inverse().kind, GateKind::Sdg);
    EXPECT_EQ(sdg.inverse().kind, GateKind::S);
    EXPECT_EQ(t.inverse().kind, GateKind::Tdg);
    EXPECT_EQ(tdg.inverse().kind, GateKind::T);
}

TEST(Gate, InverseOfRotationNegatesAngle)
{
    const Gate g{GateKind::Rx, 2, -1, 0.8};
    const Gate inv = g.inverse();
    EXPECT_EQ(inv.kind, GateKind::Rx);
    EXPECT_DOUBLE_EQ(inv.theta, -0.8);
    EXPECT_EQ(inv.q0, 2);
}

TEST(Gate, RotationInverseComposesToIdentity)
{
    for (GateKind kind : {GateKind::Rx, GateKind::Ry, GateKind::Rz}) {
        const double theta = 1.234;
        const Mat2 m = gateMatrix(kind, theta);
        const Mat2 mi = gateMatrix(kind, -theta);
        // m * mi should be the identity.
        const Amp a = m[0] * mi[0] + m[1] * mi[2];
        const Amp b = m[0] * mi[1] + m[1] * mi[3];
        const Amp c = m[2] * mi[0] + m[3] * mi[2];
        const Amp d = m[2] * mi[1] + m[3] * mi[3];
        EXPECT_NEAR(std::abs(a - Amp(1.0)), 0.0, 1e-12);
        EXPECT_NEAR(std::abs(b), 0.0, 1e-12);
        EXPECT_NEAR(std::abs(c), 0.0, 1e-12);
        EXPECT_NEAR(std::abs(d - Amp(1.0)), 0.0, 1e-12);
    }
}

TEST(Gate, ToStringFormats)
{
    EXPECT_EQ((Gate{GateKind::H, 3}).toString(), "h q3");
    EXPECT_EQ((Gate{GateKind::CX, 0, 2}).toString(), "cx q0, q2");
    const std::string rz = Gate{GateKind::Rz, 1, -1, 0.5}.toString();
    EXPECT_NE(rz.find("rz(0.5)"), std::string::npos);
}

TEST(Gate, GateMatrixRejectsTwoQubitKinds)
{
    EXPECT_DEATH(gateMatrix(GateKind::CX), "");
}

} // namespace
