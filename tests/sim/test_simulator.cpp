/**
 * @file
 * Unit and property tests for the circuit executor: known-state
 * checks plus the mirror property (C then C^-1 returns to |0...0>)
 * over random circuits.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using namespace hammer::sim;

TEST(Simulator, EmptyCircuitLeavesGroundState)
{
    const StateVector state = runCircuit(Circuit(4));
    EXPECT_DOUBLE_EQ(state.probability(0), 1.0);
}

TEST(Simulator, XChainPreparesBasisState)
{
    Circuit c(4);
    c.x(0).x(2);
    const StateVector state = runCircuit(c);
    EXPECT_DOUBLE_EQ(state.probability(0b0101), 1.0);
}

TEST(Simulator, IdealProbabilitiesMatchStateVector)
{
    Circuit c(3);
    c.h(0).cx(0, 1).rx(2, 0.9);
    const auto probs = idealProbabilities(c);
    const StateVector state = runCircuit(c);
    ASSERT_EQ(probs.size(), 8u);
    for (Bits x = 0; x < 8; ++x)
        EXPECT_NEAR(probs[x], state.probability(x), 1e-12);
}

TEST(Simulator, GateOrderMatters)
{
    Circuit xh(1), hx(1);
    xh.x(0).h(0);
    hx.h(0).x(0);
    const StateVector a = runCircuit(xh);
    const StateVector b = runCircuit(hx);
    // |-> vs |+>: probabilities equal, amplitudes differ in sign.
    EXPECT_NEAR(a.probability(0), b.probability(0), 1e-12);
    EXPECT_GT(std::abs(a.amplitude(1) - b.amplitude(1)), 0.5);
}

TEST(Simulator, RotationAnglePeriodicity)
{
    // Rx(2 pi) = -I: probabilities identical to the identity.
    Circuit c(1);
    c.rx(0, 2.0 * M_PI);
    const StateVector state = runCircuit(c);
    EXPECT_NEAR(state.probability(0), 1.0, 1e-12);
}

class MirrorProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MirrorProperty, CircuitTimesInverseIsIdentity)
{
    // Random circuit followed by its inverse returns to |0...0> —
    // exercises every gate kind's inverse and the executor.
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const int n = 2 + GetParam() % 5;
    Circuit c(n);
    const GateKind one_q[] = {GateKind::H, GateKind::X, GateKind::Y,
                              GateKind::Z, GateKind::S, GateKind::Sdg,
                              GateKind::T, GateKind::Tdg, GateKind::Rx,
                              GateKind::Ry, GateKind::Rz};
    for (int step = 0; step < 30; ++step) {
        if (n >= 2 && rng.bernoulli(0.4)) {
            const int a = static_cast<int>(rng.uniformInt(n));
            int b = static_cast<int>(rng.uniformInt(n));
            while (b == a)
                b = static_cast<int>(rng.uniformInt(n));
            switch (rng.uniformInt(3)) {
              case 0: c.cx(a, b); break;
              case 1: c.cz(a, b); break;
              default: c.swap(a, b); break;
            }
        } else {
            const auto kind = one_q[rng.uniformInt(11)];
            c.append({kind, static_cast<int>(rng.uniformInt(n)), -1,
                      rng.uniform(0.0, 2.0 * M_PI)});
        }
    }
    c.appendCircuit(c.inverse());
    const StateVector state = runCircuit(c);
    EXPECT_NEAR(state.probability(0), 1.0, 1e-9)
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MirrorProperty,
                         ::testing::Range(1, 17));

class NormPreservation : public ::testing::TestWithParam<int>
{
};

TEST_P(NormPreservation, RandomCircuitKeepsUnitNorm)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
    const int n = 3 + GetParam() % 4;
    Circuit c(n);
    for (int step = 0; step < 40; ++step) {
        if (rng.bernoulli(0.3)) {
            const int a = static_cast<int>(rng.uniformInt(n));
            int b = static_cast<int>(rng.uniformInt(n));
            while (b == a)
                b = static_cast<int>(rng.uniformInt(n));
            c.cx(a, b);
        } else {
            c.ry(static_cast<int>(rng.uniformInt(n)),
                 rng.uniform(0.0, 2.0 * M_PI));
        }
    }
    EXPECT_NEAR(runCircuit(c).normSquared(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormPreservation,
                         ::testing::Range(1, 9));

} // namespace
