#!/usr/bin/env bash
# Run a test binary under a forced kernel tier.
#
# Usage: run_tier_suite.sh <hammer_cli> <tier> <test-binary> [args...]
#
# Exits 77 (the ctest SKIP_RETURN_CODE) when this host cannot run the
# requested tier, so the same parity test list works on any machine —
# an sse2-only box skips the avx2 leg instead of failing it.
set -u

cli="$1"
tier="$2"
shift 2

supported=$("$cli" --kernels | grep '^supported tiers:') || {
    echo "run_tier_suite: could not query supported tiers" >&2
    exit 1
}
if ! grep -qw "$tier" <<<"$supported"; then
    echo "kernel tier '$tier' unsupported on this host ($supported); skipping"
    exit 77
fi

HAMMER_KERNELS="$tier" exec "$@"
