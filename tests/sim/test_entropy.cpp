/**
 * @file
 * Unit tests for entanglement entropy: product states have zero,
 * Bell/GHZ states have one bit, and values stay within bounds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/entropy.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::common::Rng;
using namespace hammer::sim;

TEST(Entropy, ProductStateHasZeroEntropy)
{
    Circuit c(4);
    c.h(0).rx(1, 0.3).ry(2, 1.1); // still a product state
    const StateVector state = runCircuit(c);
    EXPECT_NEAR(entanglementEntropy(state, 2), 0.0, 1e-9);
    EXPECT_NEAR(entanglementEntropy(state, 1), 0.0, 1e-9);
    EXPECT_NEAR(entanglementEntropy(state, 3), 0.0, 1e-9);
}

TEST(Entropy, BellPairHasOneBit)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    const StateVector state = runCircuit(c);
    EXPECT_NEAR(entanglementEntropy(state, 1), 1.0, 1e-9);
}

TEST(Entropy, GhzEntropyIsOneBitAcrossAnyCut)
{
    Circuit c(6);
    c.h(0);
    for (int q = 0; q + 1 < 6; ++q)
        c.cx(q, q + 1);
    const StateVector state = runCircuit(c);
    for (int k = 1; k < 6; ++k)
        EXPECT_NEAR(entanglementEntropy(state, k), 1.0, 1e-9)
            << "cut at k=" << k;
}

TEST(Entropy, TwoBellPairsGiveTwoBits)
{
    Circuit c(4);
    // Entangle q0 with q2 and q1 with q3; cutting {q0,q1} from
    // {q2,q3} severs both pairs.
    c.h(0).cx(0, 2);
    c.h(1).cx(1, 3);
    const StateVector state = runCircuit(c);
    EXPECT_NEAR(entanglementEntropy(state, 2), 2.0, 1e-9);
}

TEST(Entropy, BoundedBySubsystemSize)
{
    Rng rng(3);
    Circuit c(6);
    for (int layer = 0; layer < 4; ++layer) {
        for (int q = 0; q < 6; ++q)
            c.ry(q, rng.uniform(0.0, 2.0 * M_PI));
        for (int q = layer % 2; q + 1 < 6; q += 2)
            c.cx(q, q + 1);
    }
    const StateVector state = runCircuit(c);
    for (int k = 1; k < 6; ++k) {
        const double s = entanglementEntropy(state, k);
        EXPECT_GE(s, -1e-9);
        EXPECT_LE(s, std::min(k, 6 - k) + 1e-9);
    }
}

TEST(Entropy, DefaultOverloadUsesHalfCut)
{
    Circuit c(4);
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
    const StateVector state = runCircuit(c);
    EXPECT_NEAR(entanglementEntropy(state),
                entanglementEntropy(state, 2), 1e-12);
}

TEST(Entropy, MoreEntanglingLayersDoNotDecreaseEntropyOnAverage)
{
    // A brickwork random circuit's half-cut entropy should grow from
    // depth 1 to depth 6 (coarse monotonicity check on averages).
    auto average_entropy = [](int depth) {
        Rng rng(17);
        double total = 0.0;
        const int samples = 5;
        for (int s = 0; s < samples; ++s) {
            Circuit c(6);
            for (int layer = 0; layer < depth; ++layer) {
                for (int q = 0; q < 6; ++q)
                    c.ry(q, rng.uniform(0.0, 2.0 * M_PI));
                for (int q = layer % 2; q + 1 < 6; q += 2)
                    c.cx(q, q + 1);
            }
            total += entanglementEntropy(runCircuit(c));
        }
        return total / samples;
    };
    EXPECT_GT(average_entropy(6), average_entropy(1));
}

TEST(Entropy, RejectsBadSubsystem)
{
    const StateVector state = runCircuit(Circuit(3));
    EXPECT_THROW(entanglementEntropy(state, 0), std::invalid_argument);
    EXPECT_THROW(entanglementEntropy(state, 3), std::invalid_argument);
}

} // namespace
