/**
 * @file
 * Unit tests for the circuit IR: builders, validation, depth and
 * gate accounting, inversion.
 */

#include <gtest/gtest.h>

#include "sim/circuit.hpp"

namespace {

using namespace hammer::sim;

TEST(Circuit, BuilderAppendsInOrder)
{
    Circuit c(3);
    c.h(0).cx(0, 1).rz(2, 0.5);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gates()[0].kind, GateKind::H);
    EXPECT_EQ(c.gates()[1].kind, GateKind::CX);
    EXPECT_EQ(c.gates()[2].kind, GateKind::Rz);
    EXPECT_DOUBLE_EQ(c.gates()[2].theta, 0.5);
}

TEST(Circuit, RejectsOutOfRangeQubits)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), std::invalid_argument);
    EXPECT_THROW(c.cx(0, 2), std::invalid_argument);
    EXPECT_THROW(c.h(-1), std::invalid_argument);
}

TEST(Circuit, RejectsDegenerateTwoQubitGate)
{
    Circuit c(2);
    EXPECT_THROW(c.cx(1, 1), std::invalid_argument);
    EXPECT_THROW(c.swap(0, 0), std::invalid_argument);
}

TEST(Circuit, RejectsBadWidth)
{
    EXPECT_THROW(Circuit(0), std::invalid_argument);
    EXPECT_THROW(Circuit(25), std::invalid_argument);
}

TEST(Circuit, DepthOfParallelGatesIsOne)
{
    Circuit c(4);
    c.h(0).h(1).h(2).h(3);
    EXPECT_EQ(c.depth(), 1);
}

TEST(Circuit, DepthOfSerialChain)
{
    Circuit c(3);
    c.cx(0, 1).cx(1, 2).cx(0, 1);
    EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, DepthMixesParallelAndSerial)
{
    Circuit c(4);
    c.h(0).h(1);        // layer 1 on q0,q1
    c.cx(0, 1);         // layer 2
    c.cx(2, 3);         // layer 1 on q2,q3
    EXPECT_EQ(c.depth(), 2);
}

TEST(Circuit, GateCountsSplit1q2q)
{
    Circuit c(3);
    c.h(0).x(1).cx(0, 1).cz(1, 2).rz(2, 0.1);
    const GateCounts counts = c.gateCounts();
    EXPECT_EQ(counts.total, 5);
    EXPECT_EQ(counts.singleQubit, 3);
    EXPECT_EQ(counts.twoQubit, 2);
    EXPECT_EQ(counts.perQubit1q[0], 1);
    EXPECT_EQ(counts.perQubit2q[1], 2);
    EXPECT_EQ(counts.perQubit2q[2], 1);
}

TEST(Circuit, AppendCircuitConcatenates)
{
    Circuit a(2), b(2);
    a.h(0);
    b.cx(0, 1);
    a.appendCircuit(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.gates()[1].kind, GateKind::CX);
}

TEST(Circuit, AppendCircuitRejectsWidthMismatch)
{
    Circuit a(2), b(3);
    EXPECT_THROW(a.appendCircuit(b), std::invalid_argument);
}

TEST(Circuit, InverseReversesAndInverts)
{
    Circuit c(2);
    c.h(0).s(1).rx(0, 0.3).cx(0, 1);
    const Circuit inv = c.inverse();
    ASSERT_EQ(inv.size(), 4u);
    EXPECT_EQ(inv.gates()[0].kind, GateKind::CX);
    EXPECT_EQ(inv.gates()[1].kind, GateKind::Rx);
    EXPECT_DOUBLE_EQ(inv.gates()[1].theta, -0.3);
    EXPECT_EQ(inv.gates()[2].kind, GateKind::Sdg);
    EXPECT_EQ(inv.gates()[3].kind, GateKind::H);
}

TEST(Circuit, ToStringListsEveryGate)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    const std::string text = c.toString();
    EXPECT_NE(text.find("h q0"), std::string::npos);
    EXPECT_NE(text.find("cx q0, q1"), std::string::npos);
}

class DepthProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(DepthProperty, DepthBoundedByGateCountAndLowerBound)
{
    // A chain of n CX gates down a line has depth exactly n; the
    // depth of any circuit is at most its gate count.
    const int n = GetParam();
    Circuit c(n);
    for (int q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    EXPECT_EQ(c.depth(), n - 1);
    EXPECT_LE(c.depth(), static_cast<int>(c.size()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DepthProperty,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

} // namespace
