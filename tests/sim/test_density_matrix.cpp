/**
 * @file
 * Unit tests for the density-matrix backend: agreement with the
 * state-vector simulator on pure evolution, channel fixed points,
 * trace/purity invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/density_matrix.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using namespace hammer::sim;

/** Random test circuit exercising all gate kinds. */
Circuit
randomCircuit(int n, int gates, std::uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n);
    for (int step = 0; step < gates; ++step) {
        if (n >= 2 && rng.bernoulli(0.4)) {
            const int a = static_cast<int>(rng.uniformInt(n));
            int b = static_cast<int>(rng.uniformInt(n));
            while (b == a)
                b = static_cast<int>(rng.uniformInt(n));
            switch (rng.uniformInt(3)) {
              case 0: c.cx(a, b); break;
              case 1: c.cz(a, b); break;
              default: c.swap(a, b); break;
            }
        } else {
            const GateKind kinds[] = {GateKind::H, GateKind::S,
                                      GateKind::T, GateKind::Rx,
                                      GateKind::Ry, GateKind::Rz};
            c.append({kinds[rng.uniformInt(6)],
                      static_cast<int>(rng.uniformInt(n)), -1,
                      rng.uniform(0.0, 2.0 * M_PI)});
        }
    }
    return c;
}

TEST(DensityMatrix, StartsPureInGroundState)
{
    DensityMatrix rho(3);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    EXPECT_NEAR(rho.probabilities()[0], 1.0, 1e-12);
}

TEST(DensityMatrix, PureEvolutionMatchesStateVector)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        const Circuit c = randomCircuit(4, 25, seed);
        DensityMatrix rho(4);
        rho.applyCircuit(c);
        const StateVector psi = runCircuit(c);
        const auto dm_probs = rho.probabilities();
        for (Bits x = 0; x < 16; ++x) {
            EXPECT_NEAR(dm_probs[x], psi.probability(x), 1e-10)
                << "seed " << seed << " outcome " << x;
        }
        EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
    }
}

TEST(DensityMatrix, OffDiagonalsMatchOuterProduct)
{
    Circuit c(2);
    c.h(0).cx(0, 1); // Bell state
    DensityMatrix rho(2);
    rho.applyCircuit(c);
    // rho = |phi+><phi+| with amplitudes 1/sqrt(2) on 00 and 11.
    EXPECT_NEAR(rho.element(0b00, 0b11).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.element(0b11, 0b00).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.element(0b00, 0b01).real(), 0.0, 1e-12);
}

TEST(DensityMatrix, GatesPreserveTraceAndHermiticity)
{
    const Circuit c = randomCircuit(3, 30, 9);
    DensityMatrix rho(3);
    rho.applyCircuit(c);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
    for (Bits r = 0; r < 8; ++r) {
        for (Bits col = 0; col < 8; ++col) {
            const auto a = rho.element(r, col);
            const auto b = std::conj(rho.element(col, r));
            EXPECT_NEAR(std::abs(a - b), 0.0, 1e-10);
        }
    }
}

TEST(DensityMatrix, Depolarizing1qReducesPurity)
{
    DensityMatrix rho(2);
    rho.applyGate({GateKind::H, 0});
    const double before = rho.purity();
    rho.applyDepolarizing1q(0, 0.2);
    EXPECT_LT(rho.purity(), before);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, Depolarizing1qFullStrengthGivesMaximallyMixed)
{
    // p = 3/4 is the completely-depolarising point of the 1q channel.
    DensityMatrix rho(1);
    rho.applyGate({GateKind::Rx, 0, -1, 0.7});
    rho.applyDepolarizing1q(0, 0.75);
    EXPECT_NEAR(rho.probabilities()[0], 0.5, 1e-12);
    EXPECT_NEAR(rho.probabilities()[1], 0.5, 1e-12);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, Depolarizing1qMatchesExplicitPauliMixture)
{
    // Verify the closed form against (1-p) rho + p/3 sum P rho P
    // computed with explicit gate conjugations.
    const double p = 0.3;
    const Circuit prep = randomCircuit(2, 12, 21);

    DensityMatrix channel(2);
    channel.applyCircuit(prep);
    channel.applyDepolarizing1q(0, p);

    // Explicit mixture.
    DensityMatrix identity(2), x(2), y(2), z(2);
    for (auto *m : {&identity, &x, &y, &z})
        m->applyCircuit(prep);
    x.applyGate({GateKind::X, 0});
    y.applyGate({GateKind::Y, 0});
    z.applyGate({GateKind::Z, 0});

    for (Bits r = 0; r < 4; ++r) {
        for (Bits c = 0; c < 4; ++c) {
            const auto expected = (1.0 - p) * identity.element(r, c) +
                (p / 3.0) * (x.element(r, c) + y.element(r, c) +
                             z.element(r, c));
            EXPECT_NEAR(std::abs(channel.element(r, c) - expected),
                        0.0, 1e-10)
                << "entry " << r << "," << c;
        }
    }
}

TEST(DensityMatrix, Depolarizing2qFullStrengthMixesThePair)
{
    DensityMatrix rho(3);
    rho.applyGate({GateKind::H, 0});
    rho.applyGate({GateKind::CX, 0, 1});
    rho.applyDepolarizing2q(0, 1, 15.0 / 16.0);
    const auto probs = rho.probabilities();
    // Qubits 0 and 1 maximally mixed; qubit 2 stays |0>.
    for (Bits x = 0; x < 4; ++x)
        EXPECT_NEAR(probs[x], 0.25, 1e-12);
    for (Bits x = 4; x < 8; ++x)
        EXPECT_NEAR(probs[x], 0.0, 1e-12);
}

TEST(DensityMatrix, ChannelsPreserveTrace)
{
    DensityMatrix rho(3);
    rho.applyCircuit(randomCircuit(3, 20, 31));
    rho.applyDepolarizing1q(1, 0.4);
    rho.applyDepolarizing2q(0, 2, 0.3);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, ChannelOnOneQubitLeavesOthersMarginal)
{
    // Depolarising qubit 0 must not change qubit 1's marginal.
    DensityMatrix rho(2);
    rho.applyGate({GateKind::Ry, 1, -1, 0.9});
    const auto before = rho.probabilities();
    const double marginal_before = before[0b10] + before[0b11];
    rho.applyDepolarizing1q(0, 0.5);
    const auto after = rho.probabilities();
    EXPECT_NEAR(after[0b10] + after[0b11], marginal_before, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix rho(1);
    rho.applyGate({GateKind::X, 0}); // |1>
    rho.applyAmplitudeDamping(0, 0.3);
    EXPECT_NEAR(rho.probabilities()[1], 0.7, 1e-12);
    EXPECT_NEAR(rho.probabilities()[0], 0.3, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingLeavesGroundStateAlone)
{
    DensityMatrix rho(2);
    rho.applyAmplitudeDamping(0, 0.5);
    rho.applyAmplitudeDamping(1, 0.5);
    EXPECT_NEAR(rho.probabilities()[0], 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingShrinksCoherences)
{
    // On |+>, damping with gamma shrinks the off-diagonal by
    // sqrt(1 - gamma).
    DensityMatrix rho(1);
    rho.applyGate({GateKind::H, 0});
    rho.applyAmplitudeDamping(0, 0.36);
    EXPECT_NEAR(rho.element(0, 1).real(), 0.5 * std::sqrt(0.64),
                1e-12);
    // Population tilts toward |0>.
    EXPECT_NEAR(rho.probabilities()[0], 0.5 + 0.5 * 0.36, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingFullStrengthResetsQubit)
{
    DensityMatrix rho(2);
    rho.applyGate({GateKind::H, 0});
    rho.applyGate({GateKind::CX, 0, 1});
    rho.applyAmplitudeDamping(0, 1.0);
    const auto probs = rho.probabilities();
    // Qubit 0 fully reset to |0>.
    EXPECT_NEAR(probs[0b01] + probs[0b11], 0.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, KrausIdentityChannelIsNoOp)
{
    DensityMatrix rho(2);
    rho.applyCircuit(randomCircuit(2, 10, 55));
    const auto before = rho.probabilities();
    const Mat2 identity{Amp(1.0), Amp(0.0), Amp(0.0), Amp(1.0)};
    rho.applyKraus1q({identity}, 0);
    const auto after = rho.probabilities();
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_NEAR(before[i], after[i], 1e-12);
}

TEST(DensityMatrix, KrausRejectsNonTracePreservingSet)
{
    DensityMatrix rho(1);
    const Mat2 half{Amp(0.5), Amp(0.0), Amp(0.0), Amp(0.5)};
    EXPECT_THROW(rho.applyKraus1q({half}, 0), std::invalid_argument);
    EXPECT_THROW(rho.applyKraus1q({}, 0), std::invalid_argument);
}

TEST(DensityMatrix, RejectsBadArguments)
{
    EXPECT_THROW(DensityMatrix(0), std::invalid_argument);
    EXPECT_THROW(DensityMatrix(11), std::invalid_argument);
    DensityMatrix rho(2);
    EXPECT_THROW(rho.applyDepolarizing1q(2, 0.1),
                 std::invalid_argument);
    EXPECT_THROW(rho.applyDepolarizing1q(0, 0.9),
                 std::invalid_argument);
    EXPECT_THROW(rho.applyDepolarizing2q(0, 0, 0.1),
                 std::invalid_argument);
}

} // namespace
