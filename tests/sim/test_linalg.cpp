/**
 * @file
 * Unit tests for the Jacobi eigensolvers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/linalg.hpp"

namespace {

using namespace hammer::sim::linalg;
using Complex = std::complex<double>;

TEST(Linalg, DiagonalMatrixEigenvalues)
{
    RealMatrix m(3);
    m.at(0, 0) = 3.0;
    m.at(1, 1) = -1.0;
    m.at(2, 2) = 2.0;
    const auto eig = symmetricEigenvalues(m);
    ASSERT_EQ(eig.size(), 3u);
    EXPECT_NEAR(eig[0], -1.0, 1e-10);
    EXPECT_NEAR(eig[1], 2.0, 1e-10);
    EXPECT_NEAR(eig[2], 3.0, 1e-10);
}

TEST(Linalg, TwoByTwoSymmetricKnownSpectrum)
{
    // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
    RealMatrix m(2);
    m.at(0, 0) = 2.0;
    m.at(0, 1) = 1.0;
    m.at(1, 1) = 2.0;
    const auto eig = symmetricEigenvalues(m);
    EXPECT_NEAR(eig[0], 1.0, 1e-10);
    EXPECT_NEAR(eig[1], 3.0, 1e-10);
}

TEST(Linalg, TraceAndSumOfEigenvaluesAgree)
{
    RealMatrix m(4);
    // Symmetric matrix with deterministic pseudo-random entries.
    unsigned state = 12345;
    auto next = [&state]() {
        state = state * 1103515245u + 12345u;
        return ((state >> 16) % 1000) / 500.0 - 1.0;
    };
    double trace = 0.0;
    for (int r = 0; r < 4; ++r) {
        for (int c = r; c < 4; ++c) {
            const double v = next();
            m.at(r, c) = v;
            if (r == c)
                trace += v;
        }
    }
    const auto eig = symmetricEigenvalues(m);
    double sum = 0.0;
    for (double e : eig)
        sum += e;
    EXPECT_NEAR(sum, trace, 1e-8);
}

TEST(Linalg, HermitianPauliYSpectrum)
{
    // sigma_y = [[0, -i], [i, 0]] has eigenvalues -1 and +1.
    const std::vector<Complex> h{
        Complex(0, 0), Complex(0, -1),
        Complex(0, 1), Complex(0, 0)};
    const auto eig = hermitianEigenvalues(h, 2);
    ASSERT_EQ(eig.size(), 2u);
    EXPECT_NEAR(eig[0], -1.0, 1e-10);
    EXPECT_NEAR(eig[1], 1.0, 1e-10);
}

TEST(Linalg, HermitianRankOneProjector)
{
    // |psi><psi| with |psi> = (1, i)/sqrt(2): eigenvalues {0, 1}.
    const Complex a(1.0 / std::sqrt(2.0), 0.0);
    const Complex b(0.0, 1.0 / std::sqrt(2.0));
    const std::vector<Complex> h{
        a * std::conj(a), a * std::conj(b),
        b * std::conj(a), b * std::conj(b)};
    const auto eig = hermitianEigenvalues(h, 2);
    EXPECT_NEAR(eig[0], 0.0, 1e-10);
    EXPECT_NEAR(eig[1], 1.0, 1e-10);
}

TEST(Linalg, HermitianIdentityAllOnes)
{
    const int n = 5;
    std::vector<Complex> h(static_cast<std::size_t>(n * n),
                           Complex(0.0));
    for (int i = 0; i < n; ++i)
        h[static_cast<std::size_t>(i * n + i)] = Complex(1.0);
    for (double e : hermitianEigenvalues(h, n))
        EXPECT_NEAR(e, 1.0, 1e-10);
}

TEST(Linalg, RejectsBadInput)
{
    EXPECT_THROW(RealMatrix(0), std::invalid_argument);
    EXPECT_THROW(hermitianEigenvalues({Complex(1.0)}, 2),
                 std::invalid_argument);
}

} // namespace
