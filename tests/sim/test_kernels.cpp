/**
 * @file
 * Property tests for the specialised state-vector kernels and the
 * compiled-circuit layer.
 *
 * The contract under test: every specialised kernel performs, per
 * amplitude, the same floating-point arithmetic as the generic
 * branchy 2x2 routine it replaced (exact equality — the zero matrix
 * entries only ever contribute exact +-0 products), while the fusion
 * pass, which genuinely reassociates arithmetic, stays within 1e-12.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "sim/circuit.hpp"
#include "sim/compiled.hpp"
#include "sim/statevector.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using namespace hammer::sim;

// ---------------------------------------------------------------------------
// Reference implementations: the pre-overhaul generic kernels,
// bit-for-bit (per-element branch over all 2^n indices).
// ---------------------------------------------------------------------------

void
refApply1q(std::vector<Amp> &amps, const Mat2 &m, int q)
{
    const std::size_t mask = std::size_t{1} << q;
    for (std::size_t i = 0; i < amps.size(); ++i) {
        if (i & mask)
            continue;
        const std::size_t j = i | mask;
        const Amp a0 = amps[i];
        const Amp a1 = amps[j];
        amps[i] = m[0] * a0 + m[1] * a1;
        amps[j] = m[2] * a0 + m[3] * a1;
    }
}

void
refApplyCX(std::vector<Amp> &amps, int control, int target)
{
    const std::size_t cmask = std::size_t{1} << control;
    const std::size_t tmask = std::size_t{1} << target;
    for (std::size_t i = 0; i < amps.size(); ++i) {
        if ((i & cmask) && !(i & tmask))
            std::swap(amps[i], amps[i | tmask]);
    }
}

void
refApplyCZ(std::vector<Amp> &amps, int a, int b)
{
    const std::size_t amask = std::size_t{1} << a;
    const std::size_t bmask = std::size_t{1} << b;
    for (std::size_t i = 0; i < amps.size(); ++i) {
        if ((i & amask) && (i & bmask))
            amps[i] = -amps[i];
    }
}

void
refApplySwap(std::vector<Amp> &amps, int a, int b)
{
    const std::size_t amask = std::size_t{1} << a;
    const std::size_t bmask = std::size_t{1} << b;
    for (std::size_t i = 0; i < amps.size(); ++i) {
        if ((i & amask) && !(i & bmask))
            std::swap(amps[i], amps[(i & ~amask) | bmask]);
    }
}

/** The pre-overhaul sampleShots: materialised CDF + binary search. */
std::vector<Bits>
refSampleShots(const std::vector<Amp> &amps, Rng &rng, int shots)
{
    std::vector<double> cdf(amps.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps.size(); ++i) {
        acc += std::norm(amps[i]);
        cdf[i] = acc;
    }
    std::vector<Bits> out;
    out.reserve(static_cast<std::size_t>(shots));
    for (int s = 0; s < shots; ++s) {
        const double r = rng.uniform() * acc;
        const auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
        const std::size_t idx = it == cdf.end()
            ? cdf.size() - 1
            : static_cast<std::size_t>(it - cdf.begin());
        out.push_back(idx);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/** Random dense state with no zero amplitudes (unnormalised). */
std::vector<Amp>
randomAmps(int n, Rng &rng)
{
    std::vector<Amp> amps(std::size_t{1} << n);
    for (Amp &a : amps)
        a = Amp(rng.uniform(0.05, 1.0) * (rng.bernoulli(0.5) ? 1 : -1),
                rng.uniform(0.05, 1.0) * (rng.bernoulli(0.5) ? 1 : -1));
    return amps;
}

StateVector
stateFrom(const std::vector<Amp> &amps, int n)
{
    StateVector sv(n);
    for (std::size_t i = 0; i < amps.size(); ++i)
        sv.setAmplitude(i, amps[i]);
    return sv;
}

void
expectExactlyEqual(const StateVector &sv, const std::vector<Amp> &ref)
{
    ASSERT_EQ(sv.dimension(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(sv.amplitude(i).real(), ref[i].real())
            << "re mismatch at index " << i;
        EXPECT_EQ(sv.amplitude(i).imag(), ref[i].imag())
            << "im mismatch at index " << i;
    }
}

Mat2
randomMat(Rng &rng)
{
    Mat2 m;
    for (Amp &e : m)
        e = Amp(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return m;
}

/** A random circuit mixing every gate kind (1q-chain heavy). */
Circuit
randomCircuit(int n, int gates, Rng &rng)
{
    Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        const int q = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(n)));
        int p = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(n)));
        if (p == q)
            p = (p + 1) % n;
        switch (rng.uniformInt(12)) {
          case 0: c.h(q); break;
          case 1: c.x(q); break;
          case 2: c.y(q); break;
          case 3: c.z(q); break;
          case 4: c.s(q); break;
          case 5: c.t(q); break;
          case 6: c.rx(q, rng.uniform(-3.0, 3.0)); break;
          case 7: c.ry(q, rng.uniform(-3.0, 3.0)); break;
          case 8: c.rz(q, rng.uniform(-3.0, 3.0)); break;
          case 9: c.cx(q, p); break;
          case 10: c.cz(q, p); break;
          default: c.swap(q, p); break;
        }
    }
    return c;
}

// ---------------------------------------------------------------------------
// Specialised kernels == generic reference, exactly
// ---------------------------------------------------------------------------

TEST(Kernels, StrideApply1qMatchesGenericExactly)
{
    Rng rng(101);
    for (int n : {1, 3, 6}) {
        for (int q = 0; q < n; ++q) {
            auto ref = randomAmps(n, rng);
            StateVector sv = stateFrom(ref, n);
            const Mat2 m = randomMat(rng);
            sv.apply1q(m, q);
            refApply1q(ref, m, q);
            expectExactlyEqual(sv, ref);
        }
    }
}

TEST(Kernels, PhaseKernelMatchesGenericExactly)
{
    Rng rng(102);
    for (const GateKind kind : {GateKind::Z, GateKind::S,
                                GateKind::Sdg, GateKind::T,
                                GateKind::Tdg}) {
        for (int q = 0; q < 4; ++q) {
            auto ref = randomAmps(4, rng);
            StateVector sv = stateFrom(ref, 4);
            sv.applyGate({kind, q});
            refApply1q(ref, gateMatrix(kind), q);
            expectExactlyEqual(sv, ref);
        }
    }
}

TEST(Kernels, PhaseKernelNeverTouchesZeroHalf)
{
    Rng rng(103);
    const auto before = randomAmps(5, rng);
    StateVector sv = stateFrom(before, 5);
    sv.applyPhase(Amp(0.3, -0.8), 2);
    const std::size_t mask = std::size_t{1} << 2;
    for (std::size_t i = 0; i < before.size(); ++i) {
        if (!(i & mask)) {
            EXPECT_EQ(sv.amplitude(i), before[i])
                << "|0> half must be bitwise untouched";
        }
    }
}

TEST(Kernels, DiagonalKernelMatchesGenericExactly)
{
    Rng rng(104);
    for (int q = 0; q < 4; ++q) {
        const double theta = rng.uniform(-3.0, 3.0);
        auto ref = randomAmps(4, rng);
        StateVector sv = stateFrom(ref, 4);
        sv.applyGate({GateKind::Rz, q, -1, theta});
        refApply1q(ref, gateMatrix(GateKind::Rz, theta), q);
        expectExactlyEqual(sv, ref);
    }
}

TEST(Kernels, PauliPermutationKernelsMatchGenericExactly)
{
    Rng rng(105);
    for (const GateKind kind : {GateKind::X, GateKind::Y}) {
        for (int q = 0; q < 5; ++q) {
            auto ref = randomAmps(5, rng);
            StateVector sv = stateFrom(ref, 5);
            sv.applyGate({kind, q});
            refApply1q(ref, gateMatrix(kind), q);
            expectExactlyEqual(sv, ref);
        }
    }
}

TEST(Kernels, TwoQubitKernelsMatchGenericExactly)
{
    Rng rng(106);
    const int n = 4;
    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
            if (a == b)
                continue;
            auto ref = randomAmps(n, rng);
            StateVector sv = stateFrom(ref, n);
            sv.applyCX(a, b);
            refApplyCX(ref, a, b);
            expectExactlyEqual(sv, ref);

            sv.applyCZ(a, b);
            refApplyCZ(ref, a, b);
            expectExactlyEqual(sv, ref);

            sv.applySwap(a, b);
            refApplySwap(ref, a, b);
            expectExactlyEqual(sv, ref);
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled circuits
// ---------------------------------------------------------------------------

TEST(Compiled, UnfusedRunBitIdenticalToGateByGate)
{
    Rng rng(107);
    const Circuit c = randomCircuit(5, 60, rng);
    const auto compiled =
        CompiledCircuit::compile(c, {.fuse1q = false});
    ASSERT_EQ(compiled.ops().size(), c.size())
        << "unfused compilation must emit one op per source gate";

    StateVector direct(5);
    for (const Gate &g : c.gates())
        direct.applyGate(g);
    const StateVector ran = compiled.run();
    for (std::size_t i = 0; i < ran.dimension(); ++i) {
        EXPECT_EQ(ran.amplitude(i).real(), direct.amplitude(i).real());
        EXPECT_EQ(ran.amplitude(i).imag(), direct.amplitude(i).imag());
    }
}

TEST(Compiled, ClassificationPicksCheapestKernel)
{
    Circuit c(2);
    c.z(0).s(0).t(0).rz(0, 0.4).x(1).y(1).h(0).rx(1, 0.2)
     .cx(0, 1).cz(0, 1).swap(0, 1);
    const auto compiled =
        CompiledCircuit::compile(c, {.fuse1q = false});
    const std::vector<KernelKind> expected{
        KernelKind::Phase, KernelKind::Phase, KernelKind::Phase,
        KernelKind::Diag, KernelKind::PauliX, KernelKind::PauliY,
        KernelKind::Mat1q, KernelKind::Mat1q, KernelKind::CX,
        KernelKind::CZ, KernelKind::Swap};
    ASSERT_EQ(compiled.ops().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(compiled.ops()[i].kind, expected[i]) << "op " << i;
    EXPECT_EQ(compiled.stats().specialised, expected.size() - 2);
}

TEST(Compiled, FusionCollapsesRotationChains)
{
    // 1q chains fuse into one op per qubit segment; the cx flushes.
    Circuit c(2);
    c.rz(0, 0.3).rz(0, 0.5).t(0).h(1).ry(1, 0.2)
     .cx(0, 1).rx(0, 0.7).rz(0, -0.4);
    const auto compiled = CompiledCircuit::compile(c);
    // q0 chain (rz rz t -> diagonal product), q1 chain (h ry), cx,
    // trailing q0 chain (rx rz).
    ASSERT_EQ(compiled.ops().size(), 4u);
    EXPECT_EQ(compiled.ops()[0].kind, KernelKind::Diag)
        << "a fused diagonal chain must stay on the diagonal kernel";
    EXPECT_EQ(compiled.ops()[1].kind, KernelKind::Mat1q);
    EXPECT_EQ(compiled.ops()[2].kind, KernelKind::CX);
    EXPECT_EQ(compiled.ops()[3].kind, KernelKind::Mat1q);
    EXPECT_EQ(compiled.stats().sourceGates, 8u);
    EXPECT_EQ(compiled.stats().fused1q, 4u);
    EXPECT_NEAR(compiled.stats().fusionRatio(), 2.0, 1e-12);
}

TEST(Compiled, FusedMatchesUnfusedWithin1e12)
{
    Rng rng(108);
    for (int trial = 0; trial < 4; ++trial) {
        const Circuit c = randomCircuit(6, 120, rng);
        const StateVector fused = CompiledCircuit::compile(c).run();
        const StateVector plain =
            CompiledCircuit::compile(c, {.fuse1q = false}).run();
        for (std::size_t i = 0; i < fused.dimension(); ++i) {
            EXPECT_NEAR(std::abs(fused.amplitude(i) -
                                 plain.amplitude(i)),
                        0.0, 1e-12);
        }
    }
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

TEST(Sampling, SweepSampleShotsBitIdenticalToBinarySearch)
{
    Rng rng(109);
    const auto amps = randomAmps(6, rng);
    const StateVector sv = stateFrom(amps, 6);

    Rng a(42), b(42);
    const auto sweep = sv.sampleShots(a, 5000);
    const auto binary = refSampleShots(amps, b, 5000);
    ASSERT_EQ(sweep.size(), binary.size());
    for (std::size_t s = 0; s < sweep.size(); ++s)
        EXPECT_EQ(sweep[s], binary[s]) << "shot " << s;
    // Identical RNG consumption: the streams stay in lockstep.
    EXPECT_EQ(a(), b());
}

TEST(Sampling, SampleShotsNormOverloadIdentical)
{
    Rng rng(110);
    const auto amps = randomAmps(5, rng);
    const StateVector sv = stateFrom(amps, 5);
    Rng a(7), b(7);
    const auto plain = sv.sampleShots(a, 2000);
    const auto reuse = sv.sampleShots(b, 2000, sv.normSquared());
    EXPECT_EQ(plain, reuse);
}

TEST(Sampling, SampleOutcomeNormOverloadIdentical)
{
    Rng rng(111);
    const auto amps = randomAmps(4, rng);
    const StateVector sv = stateFrom(amps, 4);
    const double total = sv.normSquared();
    Rng a(9), b(9);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(sv.sampleOutcome(a), sv.sampleOutcome(b, total));
}

TEST(Sampling, ZeroShotsConsumesNoRandomness)
{
    StateVector sv(3);
    Rng a(5), b(5);
    EXPECT_TRUE(sv.sampleShots(a, 0).empty());
    EXPECT_EQ(a(), b());
}

} // namespace
