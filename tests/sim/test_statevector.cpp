/**
 * @file
 * Unit tests for the state-vector backend: gate semantics on known
 * states, norm preservation, sampling statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using namespace hammer::sim;

TEST(StateVector, StartsInAllZero)
{
    StateVector sv(3);
    EXPECT_EQ(sv.dimension(), 8u);
    EXPECT_DOUBLE_EQ(sv.probability(0), 1.0);
    EXPECT_DOUBLE_EQ(sv.probability(5), 0.0);
}

TEST(StateVector, XFlipsQubit)
{
    StateVector sv(2);
    sv.apply1q(gateMatrix(GateKind::X), 0);
    EXPECT_DOUBLE_EQ(sv.probability(0b01), 1.0);
    sv.apply1q(gateMatrix(GateKind::X), 1);
    EXPECT_DOUBLE_EQ(sv.probability(0b11), 1.0);
}

TEST(StateVector, HadamardCreatesEqualSuperposition)
{
    StateVector sv(1);
    sv.apply1q(gateMatrix(GateKind::H), 0);
    EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(1), 0.5, 1e-12);
}

TEST(StateVector, CXActsOnlyWhenControlSet)
{
    StateVector sv(2);
    sv.applyCX(0, 1);
    EXPECT_DOUBLE_EQ(sv.probability(0b00), 1.0) << "control 0: no-op";

    sv.apply1q(gateMatrix(GateKind::X), 0);
    sv.applyCX(0, 1);
    EXPECT_DOUBLE_EQ(sv.probability(0b11), 1.0) << "control 1: flips";
}

TEST(StateVector, BellStateViaHAndCX)
{
    StateVector sv(2);
    sv.apply1q(gateMatrix(GateKind::H), 0);
    sv.applyCX(0, 1);
    EXPECT_NEAR(sv.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(0b11), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(0b01), 0.0, 1e-12);
    EXPECT_NEAR(sv.probability(0b10), 0.0, 1e-12);
}

TEST(StateVector, CZAddsPhaseOnlyOn11)
{
    StateVector sv(2);
    sv.apply1q(gateMatrix(GateKind::H), 0);
    sv.apply1q(gateMatrix(GateKind::H), 1);
    sv.applyCZ(0, 1);
    EXPECT_NEAR(sv.amplitude(0b11).real(), -0.5, 1e-12);
    EXPECT_NEAR(sv.amplitude(0b00).real(), 0.5, 1e-12);
    // Probabilities are untouched by the phase.
    for (Bits x = 0; x < 4; ++x)
        EXPECT_NEAR(sv.probability(x), 0.25, 1e-12);
}

TEST(StateVector, CZSymmetricInArguments)
{
    StateVector a(2), b(2);
    for (auto *sv : {&a, &b}) {
        sv->apply1q(gateMatrix(GateKind::H), 0);
        sv->apply1q(gateMatrix(GateKind::H), 1);
    }
    a.applyCZ(0, 1);
    b.applyCZ(1, 0);
    for (Bits x = 0; x < 4; ++x) {
        EXPECT_NEAR(std::abs(a.amplitude(x) - b.amplitude(x)), 0.0,
                    1e-12);
    }
}

TEST(StateVector, SwapExchangesQubits)
{
    StateVector sv(2);
    sv.apply1q(gateMatrix(GateKind::X), 0); // |01>
    sv.applySwap(0, 1);
    EXPECT_DOUBLE_EQ(sv.probability(0b10), 1.0);
}

TEST(StateVector, SwapEqualsThreeCX)
{
    Rng rng(5);
    StateVector a(3), b(3);
    // Prepare an arbitrary product state on both.
    for (auto *sv : {&a, &b}) {
        sv->apply1q(gateMatrix(GateKind::Rx, 0.7), 0);
        sv->apply1q(gateMatrix(GateKind::Ry, 1.3), 1);
        sv->apply1q(gateMatrix(GateKind::Rz, 0.4), 2);
        sv->apply1q(gateMatrix(GateKind::H), 2);
    }
    a.applySwap(0, 2);
    b.applyCX(0, 2);
    b.applyCX(2, 0);
    b.applyCX(0, 2);
    for (Bits x = 0; x < 8; ++x)
        EXPECT_NEAR(std::abs(a.amplitude(x) - b.amplitude(x)), 0.0,
                    1e-12);
}

TEST(StateVector, UnitaryEvolutionPreservesNorm)
{
    StateVector sv(4);
    sv.apply1q(gateMatrix(GateKind::H), 0);
    sv.apply1q(gateMatrix(GateKind::Rx, 0.7), 1);
    sv.applyCX(0, 2);
    sv.applyCZ(1, 3);
    sv.apply1q(gateMatrix(GateKind::T), 2);
    sv.applySwap(0, 3);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-12);
}

TEST(StateVector, ProbabilitiesSumToOne)
{
    StateVector sv(5);
    for (int q = 0; q < 5; ++q)
        sv.apply1q(gateMatrix(GateKind::H), q);
    double total = 0.0;
    for (std::size_t x = 0; x < sv.dimension(); ++x)
        total += sv.probability(x);
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_EQ(sv.dimension(), 32u);
}

TEST(StateVector, ApplyGateDispatch)
{
    StateVector a(2), b(2);
    a.applyGate({GateKind::H, 0});
    a.applyGate({GateKind::CX, 0, 1});
    b.apply1q(gateMatrix(GateKind::H), 0);
    b.applyCX(0, 1);
    for (Bits x = 0; x < 4; ++x)
        EXPECT_NEAR(std::abs(a.amplitude(x) - b.amplitude(x)), 0.0,
                    1e-12);
}

TEST(StateVector, SampleOutcomeFollowsDistribution)
{
    StateVector sv(1);
    sv.apply1q(gateMatrix(GateKind::Ry, 2.0 * std::acos(std::sqrt(0.8))),
               0);
    // P(0) should be ~0.8.
    Rng rng(11);
    int zeros = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        if (sv.sampleOutcome(rng) == 0)
            ++zeros;
    }
    EXPECT_NEAR(zeros / static_cast<double>(trials), 0.8, 0.02);
}

TEST(StateVector, SampleShotsMatchesSampleOutcomeStatistics)
{
    StateVector sv(2);
    sv.apply1q(gateMatrix(GateKind::H), 0);
    sv.applyCX(0, 1);
    Rng rng(13);
    const auto shots = sv.sampleShots(rng, 10000);
    std::map<Bits, int> counts;
    for (Bits s : shots)
        ++counts[s];
    EXPECT_EQ(counts.count(0b01) + counts.count(0b10), 0u)
        << "Bell state should only produce 00 and 11";
    EXPECT_NEAR(counts[0b00] / 10000.0, 0.5, 0.03);
    EXPECT_NEAR(counts[0b11] / 10000.0, 0.5, 0.03);
}

TEST(StateVector, NormalizeRestoresUnitNorm)
{
    StateVector sv(1);
    sv.setAmplitude(0, {3.0, 0.0});
    sv.setAmplitude(1, {4.0, 0.0});
    sv.normalize();
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-12);
    EXPECT_NEAR(sv.probability(0), 9.0 / 25.0, 1e-12);
}

TEST(StateVector, RejectsBadArguments)
{
    StateVector sv(2);
    EXPECT_THROW(sv.apply1q(gateMatrix(GateKind::H), 2),
                 std::invalid_argument);
    EXPECT_THROW(sv.applyCX(0, 0), std::invalid_argument);
    EXPECT_THROW(sv.probability(4), std::invalid_argument);
    EXPECT_THROW(StateVector(0), std::invalid_argument);
}

} // namespace
