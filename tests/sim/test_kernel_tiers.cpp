/**
 * @file
 * Cross-tier parity for the runtime-dispatched SIMD kernel table.
 *
 * The contract under test (the bit-identity invariant of the SoA
 * engine): every supported ISA tier — scalar, SSE2, AVX2, NEON —
 * produces EXACTLY the same amplitudes as the scalar reference for
 * every kernel, both single-state and batched, because all tiers
 * instantiate the same per-lane formulas and the build disables FMA
 * contraction.  EXPECT_EQ on doubles throughout; no tolerances.
 *
 * These tests force tiers in-process via setActiveKernels(), so one
 * binary run covers every tier the host supports.  The ctest
 * tier_parity_* legs additionally re-run the whole suite under
 * HAMMER_KERNELS=<tier> to exercise the env-probe path.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "sim/batched_statevector.hpp"
#include "sim/circuit.hpp"
#include "sim/compiled.hpp"
#include "sim/kernels.hpp"
#include "sim/statevector.hpp"

namespace {

using hammer::common::Rng;
using namespace hammer::sim;

/** Scoped kernel-table override; always reverts to the probe. */
class TierGuard
{
  public:
    explicit TierGuard(KernelTier tier)
    {
        const KernelTable *table = kernelsForTier(tier);
        EXPECT_NE(table, nullptr)
            << "guard must only be built for supported tiers";
        setActiveKernels(table);
    }
    ~TierGuard() { setActiveKernels(nullptr); }
};

StateVector
randomState(int n, Rng &rng)
{
    StateVector sv(n);
    for (std::size_t i = 0; i < sv.dimension(); ++i)
        sv.setAmplitude(i, Amp(rng.uniform(-1.0, 1.0),
                               rng.uniform(-1.0, 1.0)));
    return sv;
}

Mat2
randomMat(Rng &rng)
{
    Mat2 m;
    for (Amp &e : m)
        e = Amp(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return m;
}

void
expectBitIdentical(const StateVector &got, const StateVector &want,
                   const char *what)
{
    ASSERT_EQ(got.dimension(), want.dimension());
    for (std::size_t i = 0; i < got.dimension(); ++i) {
        ASSERT_EQ(got.amplitude(i).real(), want.amplitude(i).real())
            << what << ": re mismatch at index " << i;
        ASSERT_EQ(got.amplitude(i).imag(), want.amplitude(i).imag())
            << what << ": im mismatch at index " << i;
    }
}

/**
 * Every gate kernel once per qubit.  Templated so the same stream
 * drives a StateVector and every lane of a BatchedStateVector.
 */
template <typename State>
void
runAllKernels(State &sv, const Mat2 &m, Rng &rng)
{
    const int qubits = [&] {
        int q = 0;
        for (std::size_t d = sv.dimension(); d > 1; d >>= 1)
            ++q;
        return q;
    }();
    for (int q = 0; q < qubits; ++q) {
        sv.apply1q(m, q);
        sv.applyDiagonal(Amp(0.8, -0.1), Amp(-0.3, 0.95), q);
        sv.applyPhase(Amp(0.6, -0.8), q);
        sv.applyX(q);
        sv.applyY(q);
        if (qubits < 2)
            continue;
        const int p = (q + 1 +
                       static_cast<int>(rng.uniformInt(
                           static_cast<std::uint64_t>(qubits - 1)))) %
            qubits;
        if (p != q) {
            sv.applyCX(q, p);
            sv.applyCZ(q, p);
            sv.applySwap(q, p);
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(KernelDispatch, ScalarAlwaysSupported)
{
    EXPECT_TRUE(tierCompiled(KernelTier::Scalar));
    EXPECT_TRUE(tierSupported(KernelTier::Scalar));
    const auto tiers = supportedTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), KernelTier::Scalar);
    EXPECT_EQ(tiers.back(), bestSupportedTier());
}

TEST(KernelDispatch, TierNamesRoundTrip)
{
    for (const KernelTier tier :
         {KernelTier::Scalar, KernelTier::Sse2, KernelTier::Avx2,
          KernelTier::Neon}) {
        KernelTier parsed;
        ASSERT_TRUE(parseTier(tierName(tier), parsed));
        EXPECT_EQ(parsed, tier);
    }
    KernelTier parsed;
    EXPECT_FALSE(parseTier("avx512", parsed));
    EXPECT_FALSE(parseTier("", parsed));
}

TEST(KernelDispatch, TablesDeclareTheirTier)
{
    for (const KernelTier tier : supportedTiers()) {
        const KernelTable *table = kernelsForTier(tier);
        ASSERT_NE(table, nullptr);
        EXPECT_EQ(table->tier, tier);
        EXPECT_GE(table->lanes, 1);
        EXPECT_EQ(kBatchLaneMultiple %
                      static_cast<std::size_t>(table->lanes),
                  0u)
            << "batch stride must be divisible by every tier width";
    }
}

TEST(KernelDispatch, UnsupportedTierHasNoTable)
{
    for (const KernelTier tier :
         {KernelTier::Sse2, KernelTier::Avx2, KernelTier::Neon}) {
        if (!tierSupported(tier)) {
            EXPECT_EQ(kernelsForTier(tier), nullptr);
        }
    }
}

TEST(KernelDispatch, SetActiveKernelsOverridesAndReverts)
{
    const KernelTable &probed = activeKernels();
    setActiveKernels(&kScalarKernels);
    EXPECT_EQ(activeKernels().tier, KernelTier::Scalar);
    setActiveKernels(nullptr);
    EXPECT_EQ(activeKernels().tier, probed.tier);
}

// ---------------------------------------------------------------------------
// Single-state parity: every supported tier == scalar, exactly
// ---------------------------------------------------------------------------

TEST(TierParity, SingleStateKernelsMatchScalarExactly)
{
    // n in {1..4} exercises the scalar-fallback branches (mask below
    // vector width); n in {6, 9} the vector paths with several
    // iterations of the half/quarter-space loops.
    for (const int n : {1, 2, 3, 4, 6, 9}) {
        Rng seedRng(2000 + n);
        const StateVector init = randomState(n, seedRng);
        const Mat2 m = randomMat(seedRng);

        StateVector want = init;
        {
            TierGuard guard(KernelTier::Scalar);
            Rng r(77);
            runAllKernels(want, m, r);
        }
        for (const KernelTier tier : supportedTiers()) {
            StateVector got = init;
            {
                TierGuard guard(tier);
                Rng r(77);
                runAllKernels(got, m, r);
            }
            expectBitIdentical(got, want, tierName(tier));
        }
    }
}

TEST(TierParity, CompiledCircuitRunMatchesScalarExactly)
{
    Circuit c(7);
    Rng rng(31337);
    for (int i = 0; i < 160; ++i) {
        const int q = static_cast<int>(rng.uniformInt(7));
        const int p = (q + 1 + static_cast<int>(rng.uniformInt(6))) % 7;
        switch (rng.uniformInt(10)) {
          case 0: c.h(q); break;
          case 1: c.x(q); break;
          case 2: c.y(q); break;
          case 3: c.t(q); break;
          case 4: c.rz(q, rng.uniform(-3.0, 3.0)); break;
          case 5: c.ry(q, rng.uniform(-3.0, 3.0)); break;
          case 6: c.cx(q, p); break;
          case 7: c.cz(q, p); break;
          default: c.swap(q, p); break;
        }
    }
    const auto compiled = CompiledCircuit::compile(c);

    StateVector want(7);
    {
        TierGuard guard(KernelTier::Scalar);
        want = compiled.run();
    }
    for (const KernelTier tier : supportedTiers()) {
        TierGuard guard(tier);
        const StateVector got = compiled.run();
        expectBitIdentical(got, want, tierName(tier));
    }
}

TEST(TierParity, SamplingIdenticalAcrossTiers)
{
    Rng seedRng(404);
    const StateVector sv = randomState(8, seedRng);
    std::vector<hammer::common::Bits> want;
    {
        TierGuard guard(KernelTier::Scalar);
        Rng r(55);
        want = sv.sampleShots(r, 512);
    }
    for (const KernelTier tier : supportedTiers()) {
        TierGuard guard(tier);
        Rng r(55);
        EXPECT_EQ(sv.sampleShots(r, 512), want) << tierName(tier);
    }
}

// ---------------------------------------------------------------------------
// Batched parity: every lane == its own StateVector, exactly,
// including odd batch tails (B not a multiple of any vector width)
// ---------------------------------------------------------------------------

TEST(TierParity, BatchedLanesMatchSingleStateExactly)
{
    const int n = 5;
    Rng seedRng(9090);
    std::vector<StateVector> inits;
    for (int b = 0; b < 9; ++b)
        inits.push_back(randomState(n, seedRng));
    const Mat2 m = randomMat(seedRng);

    for (const KernelTier tier : supportedTiers()) {
        TierGuard guard(tier);
        for (const int lanes : {1, 2, 3, 5, 7, 8, 9}) {
            BatchedStateVector batch(n, lanes);
            std::vector<StateVector> singles;
            for (int b = 0; b < lanes; ++b) {
                batch.setLane(b, inits[static_cast<std::size_t>(b)]);
                singles.push_back(
                    inits[static_cast<std::size_t>(b)]);
            }

            Rng batchRng(13), singleRng(13);
            runAllKernels(batch, m, batchRng);
            for (auto &sv : singles) {
                Rng r(13); // every lane sees the same gate stream
                runAllKernels(sv, m, r);
            }
            (void)singleRng;

            for (int b = 0; b < lanes; ++b) {
                const StateVector got = batch.extractLane(b);
                expectBitIdentical(
                    got, singles[static_cast<std::size_t>(b)],
                    tierName(tier));
            }
        }
    }
}

TEST(TierParity, PerLaneInjectionsMatchSingleStateExactly)
{
    const int n = 4;
    Rng seedRng(717);
    std::vector<StateVector> inits;
    for (int b = 0; b < 5; ++b)
        inits.push_back(randomState(n, seedRng));

    for (const KernelTier tier : supportedTiers()) {
        TierGuard guard(tier);
        BatchedStateVector batch(n, 5);
        std::vector<StateVector> singles = inits;
        for (int b = 0; b < 5; ++b)
            batch.setLane(b, inits[static_cast<std::size_t>(b)]);

        // Shared gate, then a different injection per lane, then
        // another shared gate — the replayBatch access pattern.
        batch.applyCX(0, 2);
        for (auto &sv : singles)
            sv.applyCX(0, 2);

        batch.applyXLane(0, 1);
        singles[0].applyX(1);
        batch.applyYLane(1, 3);
        singles[1].applyY(3);
        batch.applyPhaseLane(2, Amp(-1.0, 0.0), 0);
        singles[2].applyPhase(Amp(-1.0, 0.0), 0);
        // lanes 3, 4: no injection.

        const Mat2 h = gateMatrix(GateKind::H);
        batch.apply1q(h, 2);
        for (auto &sv : singles)
            sv.apply1q(h, 2);

        for (int b = 0; b < 5; ++b) {
            expectBitIdentical(batch.extractLane(b),
                               singles[static_cast<std::size_t>(b)],
                               tierName(tier));
        }
    }
}

TEST(TierParity, FillFromBroadcastsAndPaddingLanesStayZero)
{
    Rng seedRng(818);
    const StateVector src = randomState(3, seedRng);
    for (const KernelTier tier : supportedTiers()) {
        TierGuard guard(tier);
        BatchedStateVector batch(3, 3); // stride pads 3 -> 8
        batch.fillFrom(src);
        batch.applyGate({GateKind::H, 1});

        StateVector want = src;
        want.applyGate({GateKind::H, 1});
        for (int b = 0; b < 3; ++b)
            expectBitIdentical(batch.extractLane(b), want,
                               tierName(tier));
    }
}

} // namespace
