/**
 * @file
 * Unit tests for GHZ state preparation.
 */

#include <gtest/gtest.h>

#include "circuits/ghz.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::common::Bits;
using hammer::circuits::ghz;
using namespace hammer::sim;

TEST(Ghz, TwoCorrectOutcomesWithHalfProbability)
{
    for (int n : {2, 4, 7, 10}) {
        const StateVector state = runCircuit(ghz(n));
        const Bits all_ones = (Bits{1} << n) - 1;
        EXPECT_NEAR(state.probability(0), 0.5, 1e-9) << "n=" << n;
        EXPECT_NEAR(state.probability(all_ones), 0.5, 1e-9) << "n=" << n;
    }
}

TEST(Ghz, NoOtherOutcomePopulated)
{
    const int n = 6;
    const StateVector state = runCircuit(ghz(n));
    const Bits all_ones = (Bits{1} << n) - 1;
    for (Bits x = 1; x < all_ones; ++x)
        ASSERT_NEAR(state.probability(x), 0.0, 1e-12) << "x=" << x;
}

TEST(Ghz, GateStructureIsHPlusChain)
{
    const auto c = ghz(5);
    EXPECT_EQ(c.size(), 5u); // 1 H + 4 CX
    EXPECT_EQ(c.gateCounts().twoQubit, 4);
    EXPECT_EQ(c.depth(), 5);
}

TEST(Ghz, RejectsDegenerateWidths)
{
    EXPECT_THROW(ghz(1), std::invalid_argument);
    EXPECT_THROW(ghz(25), std::invalid_argument);
}

} // namespace
