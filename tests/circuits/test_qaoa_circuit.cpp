/**
 * @file
 * Unit tests for the QAOA circuit builder.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/qaoa_circuit.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "qaoa/cost.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using namespace hammer::circuits;
using hammer::graph::Graph;

TEST(QaoaCircuit, GateCountMatchesAnsatz)
{
    const Graph g = hammer::graph::ring(5);
    const QaoaParams params = linearRampParams(2);
    const auto c = qaoaCircuit(g, params);
    // Per layer: 2 CX + 1 Rz per edge + 1 Rx per qubit; plus n H.
    const int expected = 5 + 2 * (3 * 5 + 5);
    EXPECT_EQ(static_cast<int>(c.size()), expected);
    EXPECT_EQ(c.gateCounts().twoQubit, 2 * 2 * 5);
}

TEST(QaoaCircuit, ZeroAnglesGiveUniformDistribution)
{
    // gamma = beta = 0 leaves the uniform superposition untouched.
    const Graph g = hammer::graph::ring(4);
    QaoaParams params;
    params.gammas = {0.0};
    params.betas = {0.0};
    const auto state = hammer::sim::runCircuit(qaoaCircuit(g, params));
    for (Bits x = 0; x < 16; ++x)
        EXPECT_NEAR(state.probability(x), 1.0 / 16.0, 1e-9);
}

TEST(QaoaCircuit, SingleLayerBeatsRandomGuessing)
{
    // With sensible fixed angles, the expected cost should be below
    // the uniform-distribution expectation (which is 0 for a ring).
    Rng rng(3);
    const Graph g = hammer::graph::ring(6);
    const QaoaParams params = linearRampParams(1);
    const auto state = hammer::sim::runCircuit(qaoaCircuit(g, params));
    const auto dist = hammer::core::Distribution::fromProbabilityFn(
        6, [&](std::size_t i) { return state.probability(i); });
    EXPECT_LT(hammer::qaoa::costExpectation(dist, g), -0.5);
}

TEST(QaoaCircuit, MoreLayersImproveIdealCostRatio)
{
    const Graph g = hammer::graph::ring(6);
    auto cr_at = [&](int p) {
        const auto state = hammer::sim::runCircuit(
            qaoaCircuit(g, linearRampParams(p)));
        const auto dist =
            hammer::core::Distribution::fromProbabilityFn(
                6, [&](std::size_t i) { return state.probability(i); });
        return hammer::qaoa::costRatio(dist, g);
    };
    EXPECT_GT(cr_at(3), cr_at(1))
        << "ideal QAOA quality should grow with p (paper Fig. 10a)";
}

TEST(QaoaCircuit, ParamMismatchRejected)
{
    const Graph g = hammer::graph::ring(4);
    QaoaParams bad;
    bad.gammas = {0.1, 0.2};
    bad.betas = {0.1};
    EXPECT_THROW(qaoaCircuit(g, bad), std::invalid_argument);
    EXPECT_THROW(qaoaCircuit(g, QaoaParams{}), std::invalid_argument);
}

TEST(QaoaCircuit, LinearRampShapes)
{
    const QaoaParams params = linearRampParams(4);
    ASSERT_EQ(params.layers(), 4);
    for (int l = 1; l < 4; ++l) {
        EXPECT_GT(std::abs(params.gammas[l]),
                  std::abs(params.gammas[l - 1]))
            << "gamma magnitude ramps up";
        EXPECT_LT(params.betas[l], params.betas[l - 1])
            << "beta anneals down";
        EXPECT_GT(params.betas[l], 0.0);
    }
}

TEST(QaoaCircuit, WeightedEdgesEnterCostUnitary)
{
    Graph g(2);
    g.addEdge(0, 1, 2.0);
    QaoaParams params;
    params.gammas = {0.3};
    params.betas = {0.0};
    const auto c = qaoaCircuit(g, params);
    // Find the Rz and check its angle is 2 * gamma * weight.
    bool found = false;
    for (const auto &gate : c.gates()) {
        if (gate.kind == hammer::sim::GateKind::Rz) {
            EXPECT_NEAR(gate.theta, 2.0 * 0.3 * 2.0, 1e-12);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

} // namespace
