/**
 * @file
 * Unit tests for the mirror benchmark circuits of the Section 7
 * entanglement study.
 */

#include <gtest/gtest.h>

#include "circuits/mirror.hpp"
#include "sim/entropy.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::common::Rng;
using namespace hammer::circuits;
using namespace hammer::sim;

TEST(Mirror, FullCircuitReturnsToAllZeros)
{
    Rng rng(1);
    for (int trial = 0; trial < 5; ++trial) {
        const MirrorCircuit mirror =
            randomMirrorCircuit(6, 8, 0.6, rng);
        const StateVector state = runCircuit(mirror.full);
        EXPECT_NEAR(state.probability(0), 1.0, 1e-9)
            << "mirror identity violated on trial " << trial;
    }
}

TEST(Mirror, FirstHalfIsPrefixOfFull)
{
    Rng rng(2);
    const MirrorCircuit mirror = randomMirrorCircuit(5, 6, 0.5, rng);
    ASSERT_LE(mirror.firstHalf.size(), mirror.full.size());
    for (std::size_t i = 0; i < mirror.firstHalf.size(); ++i) {
        EXPECT_EQ(mirror.full.gates()[i].kind,
                  mirror.firstHalf.gates()[i].kind);
        EXPECT_EQ(mirror.full.gates()[i].q0,
                  mirror.firstHalf.gates()[i].q0);
    }
}

TEST(Mirror, ZeroDensityMeansNoEntanglement)
{
    Rng rng(3);
    const MirrorCircuit mirror = randomMirrorCircuit(6, 5, 0.0, rng);
    EXPECT_EQ(mirror.firstHalf.gateCounts().twoQubit, 0);
    const StateVector state = runCircuit(mirror.firstHalf);
    EXPECT_NEAR(entanglementEntropy(state), 0.0, 1e-9);
}

TEST(Mirror, HigherDensityYieldsMoreEntanglementOnAverage)
{
    auto average_entropy = [](double density, std::uint64_t seed) {
        Rng rng(seed);
        double total = 0.0;
        const int samples = 8;
        for (int s = 0; s < samples; ++s) {
            const MirrorCircuit mirror =
                randomMirrorCircuit(8, 8, density, rng);
            total += entanglementEntropy(runCircuit(mirror.firstHalf));
        }
        return total / samples;
    };
    EXPECT_GT(average_entropy(0.9, 7), average_entropy(0.1, 7));
}

TEST(Mirror, DepthControlsGateCount)
{
    Rng rng(5);
    const MirrorCircuit shallow = randomMirrorCircuit(6, 3, 0.5, rng);
    const MirrorCircuit deep = randomMirrorCircuit(6, 15, 0.5, rng);
    EXPECT_GT(deep.full.size(), shallow.full.size());
}

TEST(Mirror, DeterministicForSameSeed)
{
    Rng a(11), b(11);
    const MirrorCircuit ma = randomMirrorCircuit(5, 6, 0.5, a);
    const MirrorCircuit mb = randomMirrorCircuit(5, 6, 0.5, b);
    ASSERT_EQ(ma.full.size(), mb.full.size());
    for (std::size_t i = 0; i < ma.full.size(); ++i) {
        EXPECT_EQ(ma.full.gates()[i].kind, mb.full.gates()[i].kind);
        EXPECT_DOUBLE_EQ(ma.full.gates()[i].theta,
                         mb.full.gates()[i].theta);
    }
}

TEST(Mirror, RejectsBadArguments)
{
    Rng rng(13);
    EXPECT_THROW(randomMirrorCircuit(1, 5, 0.5, rng),
                 std::invalid_argument);
    EXPECT_THROW(randomMirrorCircuit(5, 0, 0.5, rng),
                 std::invalid_argument);
    EXPECT_THROW(randomMirrorCircuit(5, 5, 1.5, rng),
                 std::invalid_argument);
}

} // namespace
