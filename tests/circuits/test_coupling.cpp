/**
 * @file
 * Unit tests for coupling maps and BFS routing distances.
 */

#include <gtest/gtest.h>

#include "circuits/coupling.hpp"

namespace {

using hammer::circuits::CouplingMap;

TEST(Coupling, LineConnectivity)
{
    const CouplingMap map = CouplingMap::line(5);
    EXPECT_TRUE(map.connected(0, 1));
    EXPECT_TRUE(map.connected(3, 4));
    EXPECT_FALSE(map.connected(0, 2));
    EXPECT_FALSE(map.connected(0, 4));
}

TEST(Coupling, RingClosesTheLoop)
{
    const CouplingMap map = CouplingMap::ring(5);
    EXPECT_TRUE(map.connected(4, 0));
    EXPECT_EQ(map.distance(0, 3), 2) << "shorter way around the ring";
}

TEST(Coupling, GridNeighbours)
{
    const CouplingMap map = CouplingMap::grid(3, 3);
    EXPECT_TRUE(map.connected(0, 1));
    EXPECT_TRUE(map.connected(0, 3));
    EXPECT_FALSE(map.connected(0, 4)) << "no diagonal edges";
    EXPECT_EQ(map.distance(0, 8), 4);
}

TEST(Coupling, FullMapAllPairsAdjacent)
{
    const CouplingMap map = CouplingMap::full(6);
    for (int a = 0; a < 6; ++a) {
        for (int b = 0; b < 6; ++b) {
            if (a != b) {
                EXPECT_TRUE(map.connected(a, b));
            }
        }
    }
}

TEST(Coupling, ShortestPathEndpointsAndLength)
{
    const CouplingMap map = CouplingMap::line(6);
    const auto path = map.shortestPath(1, 4);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path.front(), 1);
    EXPECT_EQ(path.back(), 4);
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(map.connected(path[i], path[i + 1]));
}

TEST(Coupling, ShortestPathToSelf)
{
    const CouplingMap map = CouplingMap::line(4);
    const auto path = map.shortestPath(2, 2);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(map.distance(2, 2), 0);
}

TEST(Coupling, DisconnectedQubitsUnreachable)
{
    CouplingMap map(4);
    map.addEdge(0, 1);
    map.addEdge(2, 3);
    EXPECT_TRUE(map.shortestPath(0, 3).empty());
    EXPECT_EQ(map.distance(0, 3), -1);
}

TEST(Coupling, DuplicateEdgeIsIdempotent)
{
    CouplingMap map(3);
    map.addEdge(0, 1);
    map.addEdge(1, 0);
    EXPECT_EQ(map.neighbors(0).size(), 1u);
}

TEST(Coupling, RejectsBadArguments)
{
    EXPECT_THROW(CouplingMap(0), std::invalid_argument);
    CouplingMap map(3);
    EXPECT_THROW(map.addEdge(0, 0), std::invalid_argument);
    EXPECT_THROW(map.addEdge(0, 3), std::invalid_argument);
    EXPECT_THROW(map.neighbors(5), std::invalid_argument);
}

} // namespace
