/**
 * @file
 * Unit tests for the SWAP-insertion router: routed circuits must
 * respect connectivity and preserve circuit semantics up to the
 * output permutation.
 */

#include <gtest/gtest.h>

#include "circuits/bv.hpp"
#include "circuits/coupling.hpp"
#include "circuits/ghz.hpp"
#include "circuits/qaoa_circuit.hpp"
#include "circuits/transpiler.hpp"
#include "graph/generators.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using namespace hammer::circuits;
using hammer::sim::Circuit;
using hammer::sim::Gate;

/** Every two-qubit gate in the routed circuit must be on an edge. */
void
expectRespectConnectivity(const RoutedCircuit &routed,
                          const CouplingMap &map)
{
    for (const Gate &g : routed.circuit.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_TRUE(map.connected(g.q0, g.q1))
                << g.toString() << " violates the coupling map";
        }
    }
}

TEST(Transpiler, NoSwapsWhenCircuitFitsTheMap)
{
    const Circuit c = ghz(5); // nearest-neighbour chain
    const CouplingMap map = CouplingMap::line(5);
    const RoutedCircuit routed = transpile(c, map);
    EXPECT_EQ(routed.addedSwaps, 0);
    EXPECT_EQ(routed.circuit.size(), c.size());
}

TEST(Transpiler, InsertsSwapsForDistantPairs)
{
    Circuit c(4);
    c.cx(0, 3);
    const CouplingMap map = CouplingMap::line(4);
    const RoutedCircuit routed = transpile(c, map);
    EXPECT_GT(routed.addedSwaps, 0);
    expectRespectConnectivity(routed, map);
}

TEST(Transpiler, RoutedBvPreservesSemantics)
{
    // Routing must not change the measured logical outcome.
    const Bits key = 0b10110;
    const Circuit c = bernsteinVazirani(5, key);
    const CouplingMap map = CouplingMap::line(6);
    const RoutedCircuit routed = transpile(c, map);
    expectRespectConnectivity(routed, map);

    const auto state = hammer::sim::runCircuit(routed.circuit);
    // Find the physical outcome with probability ~1 and map it back.
    double best_p = 0.0;
    Bits best = 0;
    for (Bits x = 0; x < state.dimension(); ++x) {
        if (state.probability(x) > best_p) {
            best_p = state.probability(x);
            best = x;
        }
    }
    EXPECT_NEAR(best_p, 1.0, 1e-9);
    EXPECT_EQ(routed.toLogical(best) & 0b11111, key);
}

TEST(Transpiler, RoutedQaoaPreservesIdealDistribution)
{
    Rng rng(5);
    const auto g = hammer::graph::kRegular(6, 3, rng);
    const auto c = qaoaCircuit(g, linearRampParams(1));
    const CouplingMap map = CouplingMap::line(6);
    const RoutedCircuit routed = transpile(c, map);
    expectRespectConnectivity(routed, map);

    const auto ideal = hammer::sim::runCircuit(c);
    const auto routed_state = hammer::sim::runCircuit(routed.circuit);
    for (Bits logical = 0; logical < 64; ++logical) {
        // Find the physical index whose logical relabelling is x.
        double routed_p = 0.0;
        for (Bits phys = 0; phys < 64; ++phys) {
            if (routed.toLogical(phys) == logical)
                routed_p += routed_state.probability(phys);
        }
        EXPECT_NEAR(routed_p, ideal.probability(logical), 1e-9)
            << "logical outcome " << logical;
    }
}

TEST(Transpiler, GridGraphOnMatchingGridNeedsNoSwaps)
{
    // The paper's grid-QAOA observation: hardware-native problems
    // route without SWAPs.
    const auto g = hammer::graph::grid(2, 3);
    const auto c = qaoaCircuit(g, linearRampParams(1));
    const CouplingMap map = CouplingMap::grid(2, 3);
    const RoutedCircuit routed = transpile(c, map);
    EXPECT_EQ(routed.addedSwaps, 0);
}

TEST(Transpiler, DenseGraphOnLineNeedsManySwaps)
{
    Rng rng(7);
    const auto g = hammer::graph::kRegular(8, 3, rng);
    const auto c = qaoaCircuit(g, linearRampParams(1));
    const RoutedCircuit routed = transpile(c, CouplingMap::line(8));
    EXPECT_GT(routed.addedSwaps, 4);
    EXPECT_GT(routed.circuit.depth(), c.depth());
}

TEST(Transpiler, TrivialRoutingIsIdentity)
{
    const Circuit c = ghz(4);
    const RoutedCircuit routed = trivialRouting(c);
    EXPECT_EQ(routed.addedSwaps, 0);
    EXPECT_EQ(routed.circuit.size(), c.size());
    for (int q = 0; q < 4; ++q)
        EXPECT_EQ(routed.logicalToPhysical[q], q);
    EXPECT_EQ(routed.toLogical(0b1010), Bits{0b1010});
}

TEST(Transpiler, ToLogicalPermutesBits)
{
    RoutedCircuit routed = trivialRouting(ghz(3));
    routed.logicalToPhysical = {2, 0, 1};
    // Logical q0 lives at phys 2, q1 at phys 0, q2 at phys 1.
    // Physical outcome 0b100 -> logical bit0 set.
    EXPECT_EQ(routed.toLogical(0b100), Bits{0b001});
    EXPECT_EQ(routed.toLogical(0b001), Bits{0b010});
    EXPECT_EQ(routed.toLogical(0b010), Bits{0b100});
}

TEST(Transpiler, InitialLayoutPlacesLogicalQubits)
{
    // With layout {2, 0, 1} logical q0 starts at physical 2.
    Circuit c(3);
    c.h(0);
    const CouplingMap map = CouplingMap::full(3);
    const RoutedCircuit routed = transpile(c, map, {2, 0, 1});
    ASSERT_EQ(routed.circuit.size(), 1u);
    EXPECT_EQ(routed.circuit.gates()[0].q0, 2);
    EXPECT_EQ(routed.logicalToPhysical[0], 2);
}

TEST(Transpiler, InitialLayoutPreservesSemantics)
{
    const Bits key = 0b1101;
    const Circuit c = bernsteinVazirani(4, key);
    const CouplingMap map = CouplingMap::line(5);
    const RoutedCircuit routed = transpile(c, map, {4, 2, 0, 1, 3});
    expectRespectConnectivity(routed, map);
    const auto state = hammer::sim::runCircuit(routed.circuit);
    double recovered = 0.0;
    for (Bits phys = 0; phys < state.dimension(); ++phys) {
        if ((routed.toLogical(phys) & 0b1111) == key)
            recovered += state.probability(phys);
    }
    EXPECT_NEAR(recovered, 1.0, 1e-9);
}

TEST(Transpiler, InitialLayoutChangesRoutingCost)
{
    // A layout that separates interacting qubits forces more SWAPs.
    Circuit c(4);
    c.cx(0, 1);
    const CouplingMap map = CouplingMap::line(4);
    const RoutedCircuit near = transpile(c, map, {0, 1, 2, 3});
    const RoutedCircuit far = transpile(c, map, {0, 3, 1, 2});
    EXPECT_EQ(near.addedSwaps, 0);
    EXPECT_GT(far.addedSwaps, 0);
}

TEST(Transpiler, RejectsNonPermutationLayout)
{
    Circuit c(3);
    const CouplingMap map = CouplingMap::full(3);
    EXPECT_THROW(transpile(c, map, {0, 0, 1}), std::invalid_argument);
    EXPECT_THROW(transpile(c, map, {0, 1}), std::invalid_argument);
    EXPECT_THROW(transpile(c, map, {0, 1, 3}), std::invalid_argument);
}

TEST(Transpiler, RejectsSizeMismatch)
{
    EXPECT_THROW(transpile(ghz(4), CouplingMap::line(5)),
                 std::invalid_argument);
}

TEST(Transpiler, RejectsDisconnectedDevice)
{
    Circuit c(4);
    c.cx(0, 3);
    CouplingMap map(4);
    map.addEdge(0, 1);
    map.addEdge(2, 3);
    EXPECT_THROW(transpile(c, map), std::invalid_argument);
}

} // namespace
