/**
 * @file
 * Unit tests for the Bernstein-Vazirani builder: ideal execution must
 * return the key deterministically for every key.
 */

#include <gtest/gtest.h>

#include "circuits/bv.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::common::Bits;
using hammer::circuits::bernsteinVazirani;
using namespace hammer::sim;

TEST(Bv, UsesOneAncillaQubit)
{
    const Circuit c = bernsteinVazirani(5, 0b10110);
    EXPECT_EQ(c.numQubits(), 6);
}

TEST(Bv, TwoQubitGateCountEqualsKeyWeight)
{
    EXPECT_EQ(bernsteinVazirani(6, 0b111111).gateCounts().twoQubit, 6);
    EXPECT_EQ(bernsteinVazirani(6, 0b000001).gateCounts().twoQubit, 1);
    EXPECT_EQ(bernsteinVazirani(6, 0b000000).gateCounts().twoQubit, 0);
}

TEST(Bv, IdealOutputIsTheKeyWithAncillaReset)
{
    for (Bits key : {Bits{0b101}, Bits{0b111}, Bits{0b010}, Bits{0b000}}) {
        const Circuit c = bernsteinVazirani(3, key);
        const StateVector state = runCircuit(c);
        // Measured state should be |0>|key> with certainty.
        EXPECT_NEAR(state.probability(key), 1.0, 1e-9)
            << "key " << key;
    }
}

TEST(Bv, RejectsKeyWiderThanBits)
{
    EXPECT_THROW(bernsteinVazirani(3, 0b1000), std::invalid_argument);
}

TEST(Bv, RejectsBadWidth)
{
    EXPECT_THROW(bernsteinVazirani(0, 0), std::invalid_argument);
    EXPECT_THROW(bernsteinVazirani(24, 0), std::invalid_argument);
}

class BvKeyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BvKeyProperty, EveryKeyRecoveredExactly)
{
    const int n = 6;
    const Bits key = static_cast<Bits>(GetParam());
    const Circuit c = bernsteinVazirani(n, key);
    const StateVector state = runCircuit(c);
    EXPECT_NEAR(state.probability(key), 1.0, 1e-9);
    // All other outcomes are unpopulated.
    EXPECT_NEAR(state.normSquared(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Keys, BvKeyProperty,
                         ::testing::Values(0, 1, 5, 21, 42, 63, 32, 7));

TEST(Bv, DepthGrowsWithKeyWeight)
{
    const int shallow = bernsteinVazirani(8, 0b00000001).depth();
    const int deep = bernsteinVazirani(8, 0b11111111).depth();
    EXPECT_GT(deep, shallow);
}

} // namespace
