/**
 * @file
 * Batched trajectory replay: correctness and determinism.
 *
 * The contract: grouping noisy trajectories that share a replay
 * checkpoint into one SoA sweep (ReplayEngine::replayBatch, consumed
 * by TrajectorySampler::sampleBatch) is a pure performance
 * optimisation — every observable is bit-identical to the
 * single-state path, for every batch width (including widths that do
 * not divide any vector tier), every thread count, and every
 * supported kernel tier.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "circuits/bv.hpp"
#include "circuits/ghz.hpp"
#include "circuits/transpiler.hpp"
#include "noise/replay.hpp"
#include "noise/trajectory_sampler.hpp"
#include "sim/kernels.hpp"

namespace {

using hammer::common::Rng;
using hammer::core::Distribution;
using namespace hammer::circuits;
using namespace hammer::noise;

/** Assert two distributions are exactly equal, entry by entry. */
void
expectIdentical(const Distribution &a, const Distribution &b)
{
    ASSERT_EQ(a.numBits(), b.numBits());
    ASSERT_EQ(a.support(), b.support());
    for (const auto &e : a.entries())
        EXPECT_EQ(e.probability, b.probability(e.outcome))
            << "outcome " << e.outcome;
}

void
expectStatesIdentical(const hammer::sim::StateVector &a,
                      const hammer::sim::StateVector &b)
{
    ASSERT_EQ(a.dimension(), b.dimension());
    for (std::size_t i = 0; i < a.dimension(); ++i) {
        ASSERT_EQ(a.amplitude(i).real(), b.amplitude(i).real())
            << "re at " << i;
        ASSERT_EQ(a.amplitude(i).imag(), b.amplitude(i).imag())
            << "im at " << i;
    }
}

/** Noisy enough that most trajectories replay a suffix. */
NoiseModel
loudModel()
{
    return machinePreset("machineA").scaled(4.0);
}

TEST(BatchedReplay, LaneBitIdenticalToSingleStateReplay)
{
    const auto routed = trivialRouting(bernsteinVazirani(6, 0b110101));
    const ReplayOptions options{.checkpointBudgetBytes =
                                    std::size_t{1} << 16,
                                .batchLanes = 8};
    const ReplayEngine engine(routed.circuit, loudModel(), options);
    ASSERT_GT(engine.checkpointCount(), 0u)
        << "test needs real checkpoints to share";

    // Draw trajectories until some checkpoint start accrues several
    // event lists, then batch them together.
    Rng rng(101);
    std::vector<std::vector<ErrorEvent>> drawn;
    for (int t = 0; t < 64; ++t) {
        auto events = engine.drawErrors(rng);
        if (!events.empty())
            drawn.push_back(std::move(events));
    }
    ASSERT_GE(drawn.size(), 4u);

    // Group by shared replay start; exercise every group, including
    // singletons and odd sizes below the lane budget.
    std::map<std::size_t, std::vector<const std::vector<ErrorEvent> *>>
        byStart;
    for (const auto &events : drawn)
        byStart[engine.replayStart(events)].push_back(&events);

    bool sawMultiLane = false;
    for (const auto &[start, members] : byStart) {
        for (std::size_t at = 0; at < members.size();
             at += static_cast<std::size_t>(engine.batchLanes())) {
            const std::size_t end = std::min(
                members.size(),
                at + static_cast<std::size_t>(engine.batchLanes()));
            const std::vector<const std::vector<ErrorEvent> *> group(
                members.begin() + static_cast<std::ptrdiff_t>(at),
                members.begin() + static_cast<std::ptrdiff_t>(end));
            sawMultiLane = sawMultiLane || group.size() > 1;
            const auto batch = engine.replayBatch(start, group);
            for (std::size_t g = 0; g < group.size(); ++g) {
                expectStatesIdentical(
                    batch.extractLane(static_cast<int>(g)),
                    engine.replay(*group[g]));
            }
        }
    }
    EXPECT_TRUE(sawMultiLane)
        << "loud noise must yield at least one shared-checkpoint group";
}

TEST(BatchedReplay, MixedStartLanesMatchSingleStateReplay)
{
    // Lanes in one batch need not share a checkpoint: the sweep
    // starts at the earliest member's and later lanes ride the clean
    // prefix until their own.  Each lane must still be bit-identical
    // to its single-state replay.
    const auto routed = trivialRouting(bernsteinVazirani(6, 0b011011));
    const ReplayOptions options{.checkpointBudgetBytes =
                                    std::size_t{1} << 16,
                                .batchLanes = 8};
    const ReplayEngine engine(routed.circuit, loudModel(), options);
    ASSERT_GT(engine.checkpointCount(), 1u)
        << "test needs several checkpoints to mix";

    Rng rng(303);
    std::vector<std::vector<ErrorEvent>> drawn;
    for (int t = 0; t < 96; ++t) {
        auto events = engine.drawErrors(rng);
        if (!events.empty())
            drawn.push_back(std::move(events));
    }
    // Sort by replay start so consecutive windows mix neighbouring
    // checkpoints; verify at least one window truly mixes starts.
    std::sort(drawn.begin(), drawn.end(),
              [&](const auto &a, const auto &b) {
                  return engine.replayStart(a) < engine.replayStart(b);
              });
    bool sawMixed = false;
    const auto lanes = static_cast<std::size_t>(engine.batchLanes());
    for (std::size_t at = 0; at < drawn.size(); at += lanes) {
        const std::size_t end = std::min(drawn.size(), at + lanes);
        std::vector<const std::vector<ErrorEvent> *> group;
        std::size_t start = engine.numGates();
        std::size_t deepest = 0;
        for (std::size_t g = at; g < end; ++g) {
            group.push_back(&drawn[g]);
            start = std::min(start, engine.replayStart(drawn[g]));
            deepest = std::max(deepest, engine.replayStart(drawn[g]));
        }
        sawMixed = sawMixed || (group.size() > 1 && deepest != start);
        const auto batch = engine.replayBatch(start, group);
        for (std::size_t g = 0; g < group.size(); ++g) {
            expectStatesIdentical(
                batch.extractLane(static_cast<int>(g)),
                engine.replay(*group[g]));
        }
    }
    EXPECT_TRUE(sawMixed)
        << "draws must produce at least one mixed-start window";
}

TEST(BatchedReplay, BatchWidthInvariance)
{
    // The histogram must not depend on how trajectories are packed
    // into lanes: widths 1 (batching disabled), 3 (odd, smaller than
    // every group), 8 (default) all agree bitwise.
    const auto routed = trivialRouting(bernsteinVazirani(6, 0b101101));
    Distribution want(6);
    {
        TrajectorySampler sampler(loudModel(), 60,
                                  ReplayOptions{.batchLanes = 1});
        Rng rng(11);
        want = sampler.sampleBatch(routed, 6, 4000, rng, 1);
    }
    for (const int lanes : {2, 3, 5, 8, 16}) {
        TrajectorySampler sampler(loudModel(), 60,
                                  ReplayOptions{.batchLanes = lanes});
        Rng rng(11);
        const Distribution got =
            sampler.sampleBatch(routed, 6, 4000, rng, 1);
        expectIdentical(want, got);
    }
}

TEST(BatchedReplay, ThreadCountInvarianceWithBatching)
{
    const auto routed = trivialRouting(ghz(5));
    TrajectorySampler sampler(loudModel(), 50,
                              ReplayOptions{.batchLanes = 8});
    Rng serial_rng(21);
    const Distribution serial =
        sampler.sampleBatch(routed, 5, 3000, serial_rng, 1);
    for (const int threads : {2, 3, 4, 7}) {
        Rng rng(21);
        expectIdentical(
            serial, sampler.sampleBatch(routed, 5, 3000, rng, threads));
    }
}

TEST(BatchedReplay, TierInvariance)
{
    // The whole noisy pipeline — clean pass, checkpoints, batched
    // replay, sampling — agrees bitwise across every supported ISA
    // tier.
    const auto routed = trivialRouting(bernsteinVazirani(5, 0b10011));
    auto run = [&] {
        TrajectorySampler sampler(loudModel(), 40,
                                  ReplayOptions{.batchLanes = 8});
        Rng rng(31);
        return sampler.sampleBatch(routed, 5, 2000, rng, 2);
    };

    hammer::sim::setActiveKernels(
        hammer::sim::kernelsForTier(hammer::sim::KernelTier::Scalar));
    const Distribution want = run();
    for (const auto tier : hammer::sim::supportedTiers()) {
        hammer::sim::setActiveKernels(hammer::sim::kernelsForTier(tier));
        const Distribution got = run();
        hammer::sim::setActiveKernels(nullptr);
        expectIdentical(want, got);
    }
    hammer::sim::setActiveKernels(nullptr);
}

TEST(BatchedReplay, CallerRngAdvanceIndependentOfBatchWidth)
{
    const auto routed = trivialRouting(ghz(4));
    Rng a(41), b(41);
    {
        TrajectorySampler sampler(loudModel(), 30,
                                  ReplayOptions{.batchLanes = 1});
        (void)sampler.sampleBatch(routed, 4, 600, a, 2);
    }
    {
        TrajectorySampler sampler(loudModel(), 30,
                                  ReplayOptions{.batchLanes = 8});
        (void)sampler.sampleBatch(routed, 4, 600, b, 4);
    }
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a(), b());
}

TEST(BatchedReplay, StatsRecordBatchedSweeps)
{
    const auto routed = trivialRouting(bernsteinVazirani(6, 0b111000));
    TrajectorySampler sampler(loudModel(), 80,
                              ReplayOptions{.batchLanes = 8});
    Rng rng(51);
    (void)sampler.sampleBatch(routed, 6, 4000, rng, 2);
    const ReplayStats &stats = sampler.replayStats();
    EXPECT_EQ(stats.trajectories, 80u);
    EXPECT_GT(stats.batchSweeps, 0u)
        << "loud noise must produce shared-checkpoint groups";
    EXPECT_GE(stats.batchedTrajectories, 2 * stats.batchSweeps)
        << "a sweep batches at least two trajectories";
    EXPECT_LE(stats.batchedTrajectories, stats.trajectories);
}

TEST(BatchedReplay, LanesOneNeverBatches)
{
    const auto routed = trivialRouting(ghz(5));
    TrajectorySampler sampler(loudModel(), 40,
                              ReplayOptions{.batchLanes = 1});
    Rng rng(61);
    (void)sampler.sampleBatch(routed, 5, 2000, rng, 3);
    EXPECT_EQ(sampler.replayStats().batchSweeps, 0u);
    EXPECT_EQ(sampler.replayStats().batchedTrajectories, 0u);
}

TEST(BatchedReplay, SerialSampleUnchangedByBatchOption)
{
    // sample() is the single sequential-stream path; the batchLanes
    // knob must not perturb it.
    const auto routed = trivialRouting(bernsteinVazirani(5, 0b11001));
    Rng a(71), b(71);
    TrajectorySampler one(loudModel(), 30,
                          ReplayOptions{.batchLanes = 1});
    TrajectorySampler eight(loudModel(), 30,
                            ReplayOptions{.batchLanes = 8});
    expectIdentical(one.sample(routed, 5, 1500, a),
                    eight.sample(routed, 5, 1500, b));
}

TEST(BatchedReplay, RejectsBadBatchArguments)
{
    const auto routed = trivialRouting(ghz(4));
    EXPECT_THROW(TrajectorySampler(loudModel(), 10,
                                   ReplayOptions{.batchLanes = 0}),
                 std::invalid_argument);

    const ReplayEngine engine(routed.circuit, loudModel(),
                              ReplayOptions{.batchLanes = 2});
    Rng rng(81);
    std::vector<ErrorEvent> events;
    for (int t = 0; t < 64 && events.empty(); ++t)
        events = engine.drawErrors(rng);
    ASSERT_FALSE(events.empty());
    const std::size_t start = engine.replayStart(events);
    // Empty group.
    EXPECT_THROW((void)engine.replayBatch(start, {}),
                 std::invalid_argument);
    // More members than lanes.
    EXPECT_THROW((void)engine.replayBatch(
                     start, {&events, &events, &events}),
                 std::invalid_argument);
    // Wrong start.
    EXPECT_THROW((void)engine.replayBatch(start + 1, {&events}),
                 std::invalid_argument);
}

} // namespace
