/**
 * @file
 * Unit tests for the readout error channel.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "noise/readout.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using hammer::core::Distribution;
using namespace hammer::noise;

TEST(Readout, TransitionProbabilitiesRowStochastic)
{
    const NoiseModel m{0.0, 0.0, 0.02, 0.05};
    EXPECT_NEAR(readoutTransition(0, 0, m) + readoutTransition(0, 1, m),
                1.0, 1e-12);
    EXPECT_NEAR(readoutTransition(1, 0, m) + readoutTransition(1, 1, m),
                1.0, 1e-12);
    EXPECT_DOUBLE_EQ(readoutTransition(0, 1, m), 0.02);
    EXPECT_DOUBLE_EQ(readoutTransition(1, 0, m), 0.05);
}

TEST(Readout, NoErrorMeansIdentity)
{
    const NoiseModel m{0.0, 0.0, 0.0, 0.0};
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(applyReadoutError(0b10110, 5, m, rng), Bits{0b10110});
}

TEST(Readout, FlipRateMatchesModel)
{
    const NoiseModel m{0.0, 0.0, 0.1, 0.2};
    Rng rng(2);
    const int trials = 50000;
    int flips0 = 0, flips1 = 0;
    for (int i = 0; i < trials; ++i) {
        // Qubit 0 in state 0, qubit 1 in state 1.
        const Bits observed = applyReadoutError(0b10, 2, m, rng);
        if (observed & 0b01)
            ++flips0;
        if (!(observed & 0b10))
            ++flips1;
    }
    EXPECT_NEAR(flips0 / static_cast<double>(trials), 0.1, 0.01);
    EXPECT_NEAR(flips1 / static_cast<double>(trials), 0.2, 0.01);
}

TEST(Readout, ChannelPreservesNormalisation)
{
    Distribution d(4);
    d.set(0b1111, 0.6);
    d.set(0b0000, 0.4);
    const NoiseModel m{0.0, 0.0, 0.03, 0.06};
    const Distribution noisy = applyReadoutChannel(d, m);
    EXPECT_TRUE(noisy.normalized(1e-6));
}

TEST(Readout, ChannelSpreadsMassToNeighbours)
{
    Distribution d(3);
    d.set(0b111, 1.0);
    const NoiseModel m{0.0, 0.0, 0.0, 0.1};
    const Distribution noisy = applyReadoutChannel(d, m);
    // P(unchanged) = 0.9^3.
    EXPECT_NEAR(noisy.probability(0b111), 0.729, 1e-6);
    // Each single flip: 0.9^2 * 0.1.
    EXPECT_NEAR(noisy.probability(0b110), 0.081, 1e-6);
    EXPECT_NEAR(noisy.probability(0b101), 0.081, 1e-6);
    EXPECT_NEAR(noisy.probability(0b011), 0.081, 1e-6);
}

TEST(Readout, ChannelAsymmetryRespected)
{
    Distribution d(1);
    d.set(0b0, 0.5);
    d.set(0b1, 0.5);
    const NoiseModel m{0.0, 0.0, 0.0, 0.2};
    const Distribution noisy = applyReadoutChannel(d, m);
    // Only 1 -> 0 errors: P(0) = 0.5 + 0.5*0.2.
    EXPECT_NEAR(noisy.probability(0b0), 0.6, 1e-9);
    EXPECT_NEAR(noisy.probability(0b1), 0.4, 1e-9);
}

TEST(Readout, IdentityChannelIsExactCopy)
{
    Distribution d(3);
    d.set(0b101, 0.7);
    d.set(0b010, 0.3);
    const NoiseModel m{0.0, 0.0, 0.0, 0.0};
    const Distribution noisy = applyReadoutChannel(d, m);
    EXPECT_NEAR(noisy.probability(0b101), 0.7, 1e-12);
    EXPECT_NEAR(noisy.probability(0b010), 0.3, 1e-12);
    EXPECT_EQ(noisy.support(), 2u);
}

TEST(Readout, RejectsBadBitArguments)
{
    const NoiseModel m{};
    EXPECT_THROW(readoutTransition(2, 0, m), std::invalid_argument);
    EXPECT_THROW(readoutTransition(0, -1, m), std::invalid_argument);
}

} // namespace
