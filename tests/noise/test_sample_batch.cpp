/**
 * @file
 * Tests for the parallel batched execution engine: serial and
 * multi-threaded sampleBatch() runs must produce *bit-identical*
 * histograms for a fixed seed, on every backend.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/bv.hpp"
#include "circuits/ghz.hpp"
#include "circuits/transpiler.hpp"
#include "core/ehd.hpp"
#include "metrics/metrics.hpp"
#include "noise/channel_sampler.hpp"
#include "noise/trajectory_sampler.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using hammer::core::Distribution;
using namespace hammer::circuits;
using namespace hammer::noise;

/** Assert two distributions are exactly equal, entry by entry. */
void
expectIdentical(const Distribution &a, const Distribution &b)
{
    ASSERT_EQ(a.numBits(), b.numBits());
    ASSERT_EQ(a.support(), b.support());
    for (const auto &e : a.entries())
        EXPECT_EQ(e.probability, b.probability(e.outcome))
            << "outcome " << e.outcome;
}

TEST(SampleBatch, TrajectoryThreadCountInvariance)
{
    const auto routed = trivialRouting(bernsteinVazirani(6, 0b101101));
    TrajectorySampler sampler(machinePreset("machineB"), 60);

    Rng serial_rng(11);
    const Distribution serial =
        sampler.sampleBatch(routed, 6, 4000, serial_rng, 1);
    for (int threads : {2, 3, 4, 7}) {
        Rng rng(11);
        const Distribution parallel =
            sampler.sampleBatch(routed, 6, 4000, rng, threads);
        expectIdentical(serial, parallel);
    }
}

TEST(SampleBatch, ChannelThreadCountInvariance)
{
    // > 4096 shots so the engine actually spans several chunks.
    const auto routed = trivialRouting(bernsteinVazirani(8, 0b11011010));
    ChannelSampler sampler(machinePreset("machineA"));

    Rng serial_rng(13);
    const Distribution serial =
        sampler.sampleBatch(routed, 8, 20000, serial_rng, 1);
    for (int threads : {2, 4, 5}) {
        Rng rng(13);
        const Distribution parallel =
            sampler.sampleBatch(routed, 8, 20000, rng, threads);
        expectIdentical(serial, parallel);
    }
}

TEST(SampleBatch, AdvancesCallerRngIndependentlyOfThreadCount)
{
    // The caller's generator must be in the same state after a batch
    // no matter how many threads ran it, so interleaved experiments
    // stay reproducible.
    const auto routed = trivialRouting(ghz(5));
    TrajectorySampler sampler(machinePreset("machineA"), 20);

    Rng a(17), b(17);
    (void)sampler.sampleBatch(routed, 5, 500, a, 1);
    (void)sampler.sampleBatch(routed, 5, 500, b, 4);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a(), b());
}

TEST(SampleBatch, RepeatedBatchesDiffer)
{
    // Consecutive batches from one generator must be fresh samples,
    // not replays.
    const auto routed = trivialRouting(ghz(6));
    TrajectorySampler sampler(machinePreset("machineB"), 30);
    Rng rng(19);
    const Distribution first =
        sampler.sampleBatch(routed, 6, 3000, rng, 2);
    const Distribution second =
        sampler.sampleBatch(routed, 6, 3000, rng, 2);
    bool differs = first.support() != second.support();
    for (const auto &e : first.entries()) {
        if (e.probability != second.probability(e.outcome))
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(SampleBatch, TrajectoryBatchMatchesSerialPhysics)
{
    // The parallel path must reproduce the same noise statistics as
    // the serial reference implementation (not bit-identical — the
    // RNG streams differ — but the same physics).
    const Bits key = 0b10101;
    const auto routed = trivialRouting(bernsteinVazirani(5, key));
    TrajectorySampler sampler(machinePreset("machineA"), 100);
    Rng rng(23);
    const Distribution dist =
        sampler.sampleBatch(routed, 5, 8000, rng, 4);
    EXPECT_GT(hammer::metrics::pst(dist, {key}), 0.5);
    EXPECT_TRUE(hammer::metrics::inferredCorrectly(dist, {key}));
    const double ehd =
        hammer::core::expectedHammingDistance(dist, {key});
    EXPECT_LT(ehd, 2.0) << "errors must stay Hamming-clustered";
}

TEST(SampleBatch, IdealNoiseStillExact)
{
    const auto routed = trivialRouting(bernsteinVazirani(4, 0b1011));
    TrajectorySampler sampler(machinePreset("ideal"), 10);
    Rng rng(29);
    const Distribution dist =
        sampler.sampleBatch(routed, 4, 2000, rng, 4);
    EXPECT_EQ(dist.support(), 1u);
    EXPECT_NEAR(dist.probability(0b1011), 1.0, 1e-12);
}

TEST(SampleBatch, ShotBudgetIsExactlyHonoured)
{
    // 1000 shots over 30 trajectories does not divide evenly; the
    // quota schedule must still account for every shot, which shows
    // up as probabilities with denominator exactly 1000.
    const auto routed = trivialRouting(ghz(4));
    TrajectorySampler sampler(machinePreset("machineC"), 30);
    Rng rng(31);
    const Distribution dist =
        sampler.sampleBatch(routed, 4, 1000, rng, 3);
    double mass = 0.0;
    for (const auto &e : dist.entries()) {
        const double scaled = e.probability * 1000.0;
        EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
        mass += e.probability;
    }
    EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(SampleBatch, BaseClassFallbackUsesSerialSample)
{
    // A backend without a parallel decomposition inherits a correct
    // (serial) sampleBatch.
    class SerialOnly : public NoisySampler
    {
      public:
        Distribution sample(const RoutedCircuit &routed,
                            int measured_qubits, int shots,
                            Rng &rng) override
        {
            ++calls;
            TrajectorySampler inner(machinePreset("machineA"), 10);
            return inner.sample(routed, measured_qubits, shots, rng);
        }
        int calls = 0;
    };

    const auto routed = trivialRouting(ghz(4));
    SerialOnly backend;
    Rng rng(37);
    const Distribution dist =
        backend.sampleBatch(routed, 4, 500, rng, 8);
    EXPECT_EQ(backend.calls, 1);
    EXPECT_NEAR(dist.totalMass(), 1.0, 1e-12);
}

TEST(SampleBatch, RejectsBadArguments)
{
    const auto routed = trivialRouting(ghz(4));
    TrajectorySampler sampler(machinePreset("machineA"), 10);
    Rng rng(41);
    EXPECT_THROW(sampler.sampleBatch(routed, 0, 100, rng, 2),
                 std::invalid_argument);
    EXPECT_THROW(sampler.sampleBatch(routed, 5, 100, rng, 2),
                 std::invalid_argument);
    EXPECT_THROW(sampler.sampleBatch(routed, 4, 0, rng, 2),
                 std::invalid_argument);
    EXPECT_THROW(sampler.sampleBatch(routed, 4, 100, rng, -3),
                 std::invalid_argument);
}

} // namespace
