/**
 * @file
 * Unit tests for the Pauli-trajectory noisy sampler.
 */

#include <gtest/gtest.h>

#include "circuits/bv.hpp"
#include "circuits/ghz.hpp"
#include "circuits/transpiler.hpp"
#include "core/ehd.hpp"
#include "metrics/metrics.hpp"
#include "noise/trajectory_sampler.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using hammer::core::Distribution;
using namespace hammer::circuits;
using namespace hammer::noise;

TEST(TrajectorySampler, IdealNoiseReproducesIdealOutput)
{
    const auto routed = trivialRouting(bernsteinVazirani(4, 0b1011));
    TrajectorySampler sampler(machinePreset("ideal"), 10);
    Rng rng(1);
    const Distribution dist = sampler.sample(routed, 4, 2000, rng);
    EXPECT_EQ(dist.support(), 1u);
    EXPECT_NEAR(dist.probability(0b1011), 1.0, 1e-12);
}

TEST(TrajectorySampler, NoisyInstanceInsertsOnlyPaulis)
{
    const auto circuit = bernsteinVazirani(5, 0b11111);
    TrajectorySampler sampler(NoiseModel{0.5, 0.5, 0.0, 0.0}, 1);
    Rng rng(2);
    const auto noisy = sampler.noisyInstance(circuit, rng);
    EXPECT_GT(noisy.size(), circuit.size())
        << "50% error rate must insert errors";
    // Every extra gate is a Pauli.
    int paulis = 0;
    for (const auto &g : noisy.gates()) {
        if (g.kind == hammer::sim::GateKind::X ||
            g.kind == hammer::sim::GateKind::Y ||
            g.kind == hammer::sim::GateKind::Z) {
            ++paulis;
        }
    }
    EXPECT_GE(paulis,
              static_cast<int>(noisy.size() - circuit.size()));
}

TEST(TrajectorySampler, ZeroRateInsertsNothing)
{
    const auto circuit = ghz(5);
    TrajectorySampler sampler(machinePreset("ideal"), 1);
    Rng rng(3);
    EXPECT_EQ(sampler.noisyInstance(circuit, rng).size(),
              circuit.size());
}

TEST(TrajectorySampler, NoisyBvKeepsKeyDominantAtLowNoise)
{
    const Bits key = 0b10101;
    const auto routed = trivialRouting(bernsteinVazirani(5, key));
    TrajectorySampler sampler(machinePreset("machineA"), 100);
    Rng rng(4);
    const Distribution dist = sampler.sample(routed, 5, 8000, rng);
    EXPECT_GT(hammer::metrics::pst(dist, {key}), 0.5);
    EXPECT_TRUE(hammer::metrics::inferredCorrectly(dist, {key}));
}

TEST(TrajectorySampler, ErrorsClusterInHammingSpace)
{
    // The core claim of the paper, reproduced by the physics-faithful
    // backend: EHD far below the uniform model's n/2.
    const Bits key = 0b11111111;
    const auto routed = trivialRouting(bernsteinVazirani(8, key));
    TrajectorySampler sampler(machinePreset("machineB").scaled(3.0),
                              150);
    Rng rng(5);
    const Distribution dist = sampler.sample(routed, 8, 12000, rng);
    const double ehd = hammer::core::expectedHammingDistance(dist, {key});
    EXPECT_GT(ehd, 0.0) << "noise must produce some errors";
    EXPECT_LT(ehd, 2.0) << "errors must cluster near the key";
}

TEST(TrajectorySampler, MoreNoiseMeansLowerFidelity)
{
    const Bits key = 0b111111;
    const auto routed = trivialRouting(bernsteinVazirani(6, key));
    Rng rng(6);
    auto pst_at = [&](double scale) {
        TrajectorySampler sampler(
            machinePreset("machineA").scaled(scale), 80);
        const Distribution dist = sampler.sample(routed, 6, 6000, rng);
        return hammer::metrics::pst(dist, {key});
    };
    EXPECT_GT(pst_at(1.0), pst_at(8.0));
}

TEST(TrajectorySampler, TwoQubitDepolarizingMarginalRates)
{
    // One CX on |00> with error rate p: a measured bit flips when
    // its error component is X or Y — 8 of the 15 non-identity
    // two-qubit Paulis per qubit, and both flip for 4 of 15.
    const double p = 0.3;
    hammer::sim::Circuit c(2);
    c.cx(0, 1);
    TrajectorySampler sampler(NoiseModel{0.0, p, 0.0, 0.0}, 4000);
    Rng rng(40);
    const Distribution dist = sampler.sample(
        trivialRouting(c), 2, 40000, rng);

    const double flip_a = dist.probability(0b01) +
                          dist.probability(0b11);
    const double flip_b = dist.probability(0b10) +
                          dist.probability(0b11);
    const double flip_both = dist.probability(0b11);
    EXPECT_NEAR(flip_a, p * 8.0 / 15.0, 0.02);
    EXPECT_NEAR(flip_b, p * 8.0 / 15.0, 0.02);
    EXPECT_NEAR(flip_both, p * 4.0 / 15.0, 0.02);
    // Correlation check: joint rate far above the independent
    // product.
    EXPECT_GT(flip_both, 1.5 * flip_a * flip_b);
}

TEST(TrajectorySampler, SingleQubitDepolarizingFlipRate)
{
    // One H-H pair (identity) on |0> with 1q error rate p: each of
    // the two gates flips the measured bit with probability
    // ~ (2/3) p to first order.
    const double p = 0.15;
    hammer::sim::Circuit c(1);
    c.h(0).h(0);
    TrajectorySampler sampler(NoiseModel{p, 0.0, 0.0, 0.0}, 4000);
    Rng rng(41);
    const Distribution dist = sampler.sample(
        trivialRouting(c), 1, 40000, rng);
    // Two opportunities; X/Y after the first H act differently than
    // after the second, so just bound the flip rate near 2*(2/3)p.
    EXPECT_GT(dist.probability(1), 0.5 * 2.0 * (2.0 / 3.0) * p);
    EXPECT_LT(dist.probability(1), 1.5 * 2.0 * (2.0 / 3.0) * p);
}

TEST(TrajectorySampler, MarginalisesAncillaQubit)
{
    const auto routed = trivialRouting(bernsteinVazirani(4, 0b1111));
    TrajectorySampler sampler(machinePreset("machineA"), 50);
    Rng rng(7);
    const Distribution dist = sampler.sample(routed, 4, 4000, rng);
    EXPECT_EQ(dist.numBits(), 4);
    for (const auto &e : dist.entries())
        EXPECT_LT(e.outcome, Bits{1} << 4);
}

TEST(TrajectorySampler, GhzBothPolesSurvive)
{
    const auto routed = trivialRouting(ghz(6));
    TrajectorySampler sampler(machinePreset("machineA"), 100);
    Rng rng(8);
    const Distribution dist = sampler.sample(routed, 6, 8000, rng);
    EXPECT_GT(dist.probability(0b000000), 0.3);
    EXPECT_GT(dist.probability(0b111111), 0.3);
}

TEST(TrajectorySampler, DeterministicForFixedSeed)
{
    const auto routed = trivialRouting(ghz(4));
    TrajectorySampler sampler(machinePreset("machineB"), 20);
    Rng a(9), b(9);
    const Distribution da = sampler.sample(routed, 4, 1000, a);
    const Distribution db = sampler.sample(routed, 4, 1000, b);
    ASSERT_EQ(da.support(), db.support());
    for (const auto &e : da.entries())
        EXPECT_DOUBLE_EQ(e.probability, db.probability(e.outcome));
}

TEST(TrajectorySampler, RejectsBadArguments)
{
    const auto routed = trivialRouting(ghz(4));
    TrajectorySampler sampler(machinePreset("machineA"), 10);
    Rng rng(10);
    EXPECT_THROW(sampler.sample(routed, 0, 100, rng),
                 std::invalid_argument);
    EXPECT_THROW(sampler.sample(routed, 5, 100, rng),
                 std::invalid_argument);
    EXPECT_THROW(sampler.sample(routed, 4, 0, rng),
                 std::invalid_argument);
    EXPECT_THROW(TrajectorySampler(machinePreset("machineA"), 0),
                 std::invalid_argument);
}

} // namespace
