/**
 * @file
 * Regression tests for the checkpointed trajectory-replay engine.
 *
 * Three layers of guarantees:
 *  - ReplayEngine::drawErrors is RNG draw-for-draw compatible with
 *    TrajectorySampler::noisyInstance, and replaying a trajectory
 *    from a checkpoint is bit-identical to simulating its noisy
 *    circuit from scratch;
 *  - TrajectorySampler::sample reproduces the historical
 *    build-a-circuit-per-trajectory engine bit-for-bit;
 *  - sample()/sampleBatch() determinism (thread-count invariance,
 *    checkpoint-budget invariance) holds on the new paths, including
 *    the zero-error fast path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "circuits/bv.hpp"
#include "circuits/transpiler.hpp"
#include "noise/readout.hpp"
#include "noise/replay.hpp"
#include "noise/trajectory_sampler.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using hammer::core::Distribution;
using hammer::sim::Amp;
using hammer::sim::Circuit;
using hammer::sim::Gate;
using hammer::sim::GateKind;
using hammer::sim::StateVector;
using namespace hammer::circuits;
using namespace hammer::noise;

/** Assert two distributions are exactly equal, entry by entry. */
void
expectIdentical(const Distribution &a, const Distribution &b)
{
    ASSERT_EQ(a.numBits(), b.numBits());
    ASSERT_EQ(a.support(), b.support());
    for (const auto &e : a.entries())
        EXPECT_EQ(e.probability, b.probability(e.outcome))
            << "outcome " << e.outcome;
}

/** A routed test circuit with 1q chains, rotations and 2q gates. */
RoutedCircuit
testCircuit()
{
    Circuit c = bernsteinVazirani(5, 0b10110);
    c.rz(0, 0.37).rx(1, -0.8).t(2).s(3).ry(4, 1.1).cz(1, 3);
    return trivialRouting(c);
}

// ---------------------------------------------------------------------------
// drawErrors <-> noisyInstance stream compatibility
// ---------------------------------------------------------------------------

TEST(ReplayEngine, DrawErrorsMatchesNoisyInstance)
{
    const RoutedCircuit routed = testCircuit();
    const NoiseModel model{0.3, 0.4, 0.0, 0.0};
    const TrajectorySampler sampler(model, 1);
    const ReplayEngine engine(routed.circuit, model);

    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng a(seed), b(seed);
        const Circuit noisy =
            sampler.noisyInstance(routed.circuit, a);
        const auto events = engine.drawErrors(b);

        // Rebuild the noisy gate stream from the event list.
        Circuit rebuilt(routed.circuit.numQubits());
        auto event = events.begin();
        const auto &gates = routed.circuit.gates();
        for (std::size_t i = 0; i < gates.size(); ++i) {
            rebuilt.append(gates[i]);
            while (event != events.end() && event->gateIndex == i) {
                rebuilt.append({event->pauli, event->qubit});
                ++event;
            }
        }
        ASSERT_EQ(rebuilt.size(), noisy.size()) << "seed " << seed;
        for (std::size_t i = 0; i < noisy.size(); ++i) {
            EXPECT_EQ(rebuilt.gates()[i].kind, noisy.gates()[i].kind);
            EXPECT_EQ(rebuilt.gates()[i].q0, noisy.gates()[i].q0);
            EXPECT_EQ(rebuilt.gates()[i].q1, noisy.gates()[i].q1);
            EXPECT_EQ(rebuilt.gates()[i].theta,
                      noisy.gates()[i].theta);
        }
        // Identical RNG consumption: both streams stay in lockstep.
        EXPECT_EQ(a(), b()) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------------
// Checkpointed replay == full re-simulation
// ---------------------------------------------------------------------------

TEST(ReplayEngine, ReplayBitIdenticalToFullResimulation)
{
    const RoutedCircuit routed = testCircuit();
    const NoiseModel model{0.2, 0.3, 0.0, 0.0};

    // Tiny budgets force every checkpoint-interval shape, including
    // the degenerate replay-from-scratch engine.
    const std::size_t state_bytes =
        (std::size_t{1} << routed.circuit.numQubits()) * sizeof(Amp);
    for (const std::size_t budget :
         {std::size_t{0}, state_bytes, 3 * state_bytes,
          std::size_t{64} << 20}) {
        const ReplayEngine engine(routed.circuit, model, {budget});
        int replayed = 0;
        for (std::uint64_t seed = 100; seed < 140; ++seed) {
            Rng rng(seed);
            const auto events = engine.drawErrors(rng);
            if (events.empty())
                continue;
            ++replayed;

            // Reference: the trajectory's noisy circuit, simulated
            // from |0> gate by gate.
            StateVector full(routed.circuit.numQubits());
            auto event = events.begin();
            const auto &gates = routed.circuit.gates();
            for (std::size_t i = 0; i < gates.size(); ++i) {
                full.applyGate(gates[i]);
                while (event != events.end() &&
                       event->gateIndex == i) {
                    full.applyGate({event->pauli, event->qubit});
                    ++event;
                }
            }

            const StateVector fast = engine.replay(events);
            for (std::size_t i = 0; i < full.dimension(); ++i) {
                EXPECT_EQ(fast.amplitude(i).real(),
                          full.amplitude(i).real())
                    << "budget " << budget << " seed " << seed
                    << " index " << i;
                EXPECT_EQ(fast.amplitude(i).imag(),
                          full.amplitude(i).imag())
                    << "budget " << budget << " seed " << seed
                    << " index " << i;
            }
        }
        EXPECT_GT(replayed, 0) << "model must produce errors";
    }
}

TEST(ReplayEngine, CheckpointLayoutRespectsBudget)
{
    const RoutedCircuit routed = testCircuit();
    const NoiseModel model{0.01, 0.01, 0.0, 0.0};
    const std::size_t state_bytes =
        (std::size_t{1} << routed.circuit.numQubits()) * sizeof(Amp);

    const ReplayEngine none(routed.circuit, model, {0});
    EXPECT_EQ(none.checkpointCount(), 0u);
    EXPECT_EQ(none.numGates(), routed.circuit.size());

    const ReplayEngine three(routed.circuit, model,
                             {3 * state_bytes});
    EXPECT_LE(three.checkpointCount(), 3u);
    EXPECT_GT(three.checkpointCount(), 0u);

    const ReplayEngine big(routed.circuit, model,
                           {std::size_t{64} << 20});
    // A large budget checkpoints (at most) every gate.
    EXPECT_EQ(big.checkpointInterval(), 1u);
    EXPECT_EQ(big.checkpointCount(), routed.circuit.size() - 1);
}

// ---------------------------------------------------------------------------
// TrajectorySampler::sample == the historical engine, bit for bit
// ---------------------------------------------------------------------------

/**
 * The pre-replay engine, replicated: one noisy Circuit per
 * trajectory, full simulation from |0>, materialised-CDF sampling.
 */
Distribution
historicalSample(const TrajectorySampler &sampler,
                 const RoutedCircuit &routed, const NoiseModel &model,
                 int trajectories, int measured_qubits, int shots,
                 Rng &rng)
{
    const int n = routed.circuit.numQubits();
    const Bits mask = (Bits{1} << measured_qubits) - 1;
    hammer::core::CountAccumulator counts;
    int assigned = 0;
    for (int t = 0; t < trajectories; ++t) {
        const int quota = (shots - assigned) / (trajectories - t);
        if (quota == 0)
            continue;
        assigned += quota;

        const Circuit instance =
            sampler.noisyInstance(routed.circuit, rng);
        StateVector state(n);
        for (const Gate &g : instance.gates())
            state.applyGate(g);

        // Seed-style sampling: CDF array + per-shot binary search.
        std::vector<double> cdf(state.dimension());
        double acc = 0.0;
        for (std::size_t i = 0; i < state.dimension(); ++i) {
            acc += std::norm(state.amplitude(i));
            cdf[i] = acc;
        }
        // All shot uniforms are drawn before any readout draw, as
        // the historical sampleShots did.
        std::vector<Bits> raw;
        raw.reserve(static_cast<std::size_t>(quota));
        for (int s = 0; s < quota; ++s) {
            const double r = rng.uniform() * acc;
            const auto it =
                std::upper_bound(cdf.begin(), cdf.end(), r);
            raw.push_back(it == cdf.end()
                ? cdf.size() - 1
                : static_cast<std::size_t>(it - cdf.begin()));
        }
        for (Bits physical : raw) {
            physical = applyReadoutError(physical, n, model, rng);
            counts.add(routed.toLogical(physical) & mask);
        }
    }
    return counts.toDistribution(measured_qubits);
}

TEST(ReplayDeterminism, SerialSampleMatchesHistoricalEngine)
{
    const RoutedCircuit routed = testCircuit();
    for (const char *preset : {"ideal", "machineA", "machineB"}) {
        const NoiseModel model = machinePreset(preset);
        TrajectorySampler sampler(model, 40);
        Rng a(77), b(77);
        const Distribution fast = sampler.sample(routed, 5, 3000, a);
        const Distribution slow = historicalSample(
            sampler, routed, model, 40, 5, 3000, b);
        expectIdentical(fast, slow);
        EXPECT_EQ(a(), b()) << "RNG streams must stay in lockstep";
    }
}

// ---------------------------------------------------------------------------
// Thread-count and budget invariance on the new paths
// ---------------------------------------------------------------------------

TEST(ReplayDeterminism, BatchThreadCountInvariance)
{
    const RoutedCircuit routed = testCircuit();
    // ideal exercises only the zero-error fast path; the scaled
    // model makes nearly every trajectory replay.
    for (const double scale : {0.0, 1.0, 20.0}) {
        const NoiseModel model =
            machinePreset("machineA").scaled(scale);
        TrajectorySampler sampler(model, 48);
        Rng serial_rng(13);
        const Distribution serial =
            sampler.sampleBatch(routed, 5, 4000, serial_rng, 1);
        for (int threads : {2, 4}) {
            Rng rng(13);
            expectIdentical(serial, sampler.sampleBatch(routed, 5,
                                                        4000, rng,
                                                        threads));
        }
    }
}

TEST(ReplayDeterminism, CheckpointBudgetNeverChangesResults)
{
    const RoutedCircuit routed = testCircuit();
    const NoiseModel model = machinePreset("machineB").scaled(5.0);
    const std::size_t state_bytes =
        (std::size_t{1} << routed.circuit.numQubits()) * sizeof(Amp);

    TrajectorySampler reference(model, 32);
    Rng ref_rng(99);
    const Distribution expected =
        reference.sample(routed, 5, 2500, ref_rng);

    for (const std::size_t budget :
         {std::size_t{0}, state_bytes, 2 * state_bytes}) {
        TrajectorySampler sampler(model, 32, ReplayOptions{budget});
        Rng rng(99);
        expectIdentical(expected,
                        sampler.sample(routed, 5, 2500, rng));
    }
}

TEST(ReplayDeterminism, StatsAccountForFastPathAndReplay)
{
    const RoutedCircuit routed = testCircuit();
    TrajectorySampler sampler(machinePreset("machineA"), 64);
    Rng rng(3);
    sampler.sample(routed, 5, 2000, rng);

    const ReplayStats &stats = sampler.replayStats();
    EXPECT_EQ(stats.trajectories, 64u);
    EXPECT_GT(stats.zeroError, 0u)
        << "realistic rates must produce clean trajectories";
    EXPECT_LT(stats.zeroError, stats.trajectories)
        << "some trajectories must carry errors";
    EXPECT_GT(stats.gatesFull, 0u);
    EXPECT_LT(stats.gatesReplayed, stats.gatesFull)
        << "replay must beat from-scratch simulation";
    EXPECT_GT(stats.hitRate(), 0.0);
    EXPECT_LT(stats.replayedFraction(), 1.0);

    sampler.resetReplayStats();
    EXPECT_EQ(sampler.replayStats().trajectories, 0u);
}

} // namespace
