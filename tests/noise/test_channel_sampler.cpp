/**
 * @file
 * Unit tests for the analytic channel sampler, including the
 * cross-check against the trajectory backend that justifies using it
 * for the large sweeps.
 */

#include <gtest/gtest.h>

#include "circuits/bv.hpp"
#include "circuits/ghz.hpp"
#include "circuits/qaoa_circuit.hpp"
#include "circuits/transpiler.hpp"
#include "core/ehd.hpp"
#include "graph/generators.hpp"
#include "metrics/metrics.hpp"
#include "noise/channel_sampler.hpp"
#include "noise/trajectory_sampler.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using hammer::core::Distribution;
using hammer::sim::Circuit;
using namespace hammer::circuits;
using namespace hammer::noise;

TEST(ChannelSampler, IdealNoiseReproducesIdealOutput)
{
    const auto routed = trivialRouting(bernsteinVazirani(5, 0b10101));
    ChannelSampler sampler(machinePreset("ideal"));
    Rng rng(1);
    const Distribution dist = sampler.sample(routed, 5, 3000, rng);
    EXPECT_EQ(dist.support(), 1u);
    EXPECT_NEAR(dist.probability(0b10101), 1.0, 1e-12);
}

TEST(ChannelSampler, FlipProbabilitiesGrowWithGateCount)
{
    ChannelSampler sampler(machinePreset("machineA"));
    const auto light = trivialRouting(bernsteinVazirani(6, 0b000001));
    const auto heavy = trivialRouting(bernsteinVazirani(6, 0b111111));
    const auto flips_light = sampler.gateFlipProbabilities(light);
    const auto flips_heavy = sampler.gateFlipProbabilities(heavy);
    // The ancilla (qubit 6) absorbs CXs proportional to key weight.
    EXPECT_GT(flips_heavy[6], flips_light[6]);
}

TEST(ChannelSampler, ScrambleGrowsWithTwoQubitCount)
{
    ChannelSampler sampler(machinePreset("machineA"));
    const auto shallow = trivialRouting(ghz(4));
    const auto deep = trivialRouting(bernsteinVazirani(10, 0b1111111111));
    EXPECT_GT(sampler.scrambleProbability(deep),
              sampler.scrambleProbability(shallow));
}

TEST(ChannelSampler, ScrambleRespectsCap)
{
    ChannelParams params;
    params.maxScramble = 0.4;
    ChannelSampler sampler(machinePreset("machineB").scaled(50.0),
                           params);
    const auto routed = trivialRouting(bernsteinVazirani(10,
                                                         0b1111111111));
    EXPECT_LE(sampler.scrambleProbability(routed), 0.4);
}

TEST(ChannelSampler, CorrelatedFlipsTrackTwoQubitPairs)
{
    // A GHZ chain puts CXs on adjacent pairs; all qubits measured.
    const auto routed = trivialRouting(ghz(5));
    ChannelSampler sampler(machinePreset("machineA"));
    const auto flips = sampler.correlatedFlips(routed, 5);
    ASSERT_EQ(flips.size(), 4u) << "one pair per chain CX";
    for (const auto &cf : flips) {
        EXPECT_EQ(cf.qubitB, cf.qubitA + 1);
        EXPECT_GT(cf.probability, 0.0);
        EXPECT_LT(cf.probability, 0.01);
    }
}

TEST(ChannelSampler, CorrelatedFlipsExcludeUnmeasuredPartners)
{
    // BV's CXs all touch the (unmeasured) ancilla, so with a direct
    // all-to-all device no correlated pair lies inside the measured
    // bits.
    const auto circuit = bernsteinVazirani(5, 0b11111);
    const auto routed = transpile(circuit, CouplingMap::full(6));
    ChannelSampler sampler(machinePreset("machineA"));
    EXPECT_TRUE(sampler.correlatedFlips(routed, 5).empty());
}

TEST(ChannelSampler, CorrelatedFlipProbabilityGrowsWithGateCount)
{
    Circuit few(2), many(2);
    few.cx(0, 1);
    for (int i = 0; i < 20; ++i)
        many.cx(0, 1);
    ChannelSampler sampler(machinePreset("machineA"));
    const auto f = sampler.correlatedFlips(trivialRouting(few), 2);
    const auto m = sampler.correlatedFlips(trivialRouting(many), 2);
    ASSERT_EQ(f.size(), 1u);
    ASSERT_EQ(m.size(), 1u);
    EXPECT_GT(m.front().probability, f.front().probability);
}

TEST(ChannelSampler, CorrelatedErrorsProduceDominantDoubleFlips)
{
    // With strong two-qubit noise on one adjacent pair, the
    // double-flip outcome must out-weigh the product of the two
    // single-flip outcomes (the correlation signature of Section
    // 4.2's dominant incorrect outcomes).
    Circuit c(4);
    c.x(0).x(1).x(2).x(3);
    for (int i = 0; i < 12; ++i)
        c.cx(0, 1);
    NoiseModel model{0.0, 0.03, 0.0, 0.0};
    ChannelSampler sampler(model);
    Rng rng(21);
    const auto dist = sampler.sample(trivialRouting(c), 4, 60000, rng);
    const double p_both = dist.probability(0b1100);   // bits 0,1 flip
    const double p_a = dist.probability(0b1110);
    const double p_b = dist.probability(0b1101);
    EXPECT_GT(p_both, 4.0 * p_a * p_b / dist.probability(0b1111))
        << "double flips must be correlated, not independent";
}

TEST(ChannelSampler, CoherentErrorsOffByDefault)
{
    const auto routed = trivialRouting(ghz(5));
    ChannelSampler sampler(machinePreset("machineB"));
    for (double f : sampler.coherentFlipProbabilities(routed))
        EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(ChannelSampler, CoherentFlipGrowsQuadraticallyAtSmallAngle)
{
    // sin^2(k theta) ~ (k theta)^2: doubling the gate count roughly
    // quadruples the flip probability — the signature that coherent
    // errors accumulate in amplitude, not probability.
    ChannelParams params;
    params.coherentPer2q = 0.01;
    ChannelSampler sampler(machinePreset("ideal"), params);

    Circuit few(2), many(2);
    for (int i = 0; i < 5; ++i)
        few.cx(0, 1);
    for (int i = 0; i < 10; ++i)
        many.cx(0, 1);
    const double f5 = sampler.coherentFlipProbabilities(
        trivialRouting(few))[0];
    const double f10 = sampler.coherentFlipProbabilities(
        trivialRouting(many))[0];
    EXPECT_NEAR(f10 / f5, 4.0, 0.05);
}

TEST(ChannelSampler, CoherentErrorCreatesDominantIncorrectOutcome)
{
    // The Fig. 7 / Fig. 8(a) regime: a systematically miscalibrated
    // gate makes one specific erroneous outcome beat the correct
    // answer (IST < 1).
    Circuit c(4);
    c.x(0).x(1).x(2).x(3);
    for (int i = 0; i < 16; ++i)
        c.cx(0, 1); // ~0.08 rad each -> theta ~ 1.28, sin^2 ~ 0.91
    ChannelParams params;
    params.coherentPer2q = 0.08;
    ChannelSampler sampler(NoiseModel{0.0005, 0.002, 0.005, 0.008},
                           params);
    Rng rng(33);
    const auto dist = sampler.sample(trivialRouting(c), 4, 20000, rng);
    EXPECT_LT(hammer::metrics::ist(dist, {0b1111}), 1.0)
        << "the systematic double-flip outcome should dominate";
}

TEST(ChannelSampler, ErrorsClusterInHammingSpace)
{
    const Bits key = 0b1111111111;
    const auto routed = trivialRouting(bernsteinVazirani(10, key));
    ChannelSampler sampler(machinePreset("machineB"));
    Rng rng(2);
    const Distribution dist = sampler.sample(routed, 10, 16000, rng);
    const double ehd = hammer::core::expectedHammingDistance(dist, {key});
    EXPECT_GT(ehd, 0.0);
    EXPECT_LT(ehd, hammer::core::uniformModelEhd(10) / 2.0)
        << "clustered errors must beat the uniform model";
}

TEST(ChannelSampler, AgreesWithTrajectoryBackendOnPst)
{
    // The two backends model the same physics; their PST on a small
    // BV circuit should agree within a few points.
    const Bits key = 0b10111;
    const auto routed = trivialRouting(bernsteinVazirani(5, key));
    const NoiseModel model = machinePreset("machineA").scaled(2.0);

    Rng rng_t(3), rng_c(4);
    TrajectorySampler trajectory(model, 150);
    ChannelSampler channel(model);
    const double pst_t = hammer::metrics::pst(
        trajectory.sample(routed, 5, 12000, rng_t), {key});
    const double pst_c = hammer::metrics::pst(
        channel.sample(routed, 5, 12000, rng_c), {key});
    EXPECT_NEAR(pst_t, pst_c, 0.12)
        << "backends diverge: trajectory " << pst_t << " vs channel "
        << pst_c;
}

TEST(ChannelSampler, AgreesWithTrajectoryBackendOnEhd)
{
    const Bits key = 0b111111;
    const auto routed = trivialRouting(bernsteinVazirani(6, key));
    const NoiseModel model = machinePreset("machineB").scaled(2.0);

    Rng rng_t(5), rng_c(6);
    TrajectorySampler trajectory(model, 150);
    ChannelSampler channel(model);
    const double ehd_t = hammer::core::expectedHammingDistance(
        trajectory.sample(routed, 6, 12000, rng_t), {key});
    const double ehd_c = hammer::core::expectedHammingDistance(
        channel.sample(routed, 6, 12000, rng_c), {key});
    EXPECT_NEAR(ehd_t, ehd_c, 0.35);
}

TEST(ChannelSampler, RoutedCircuitSuffersMoreThanUnrouted)
{
    // Routing adds SWAPs -> more two-qubit gates -> lower fidelity.
    Rng rng_graph(7);
    const auto g = hammer::graph::kRegular(8, 3, rng_graph);
    const auto circuit = qaoaCircuit(g, linearRampParams(1));
    const auto unrouted = trivialRouting(circuit);
    const auto routed = transpile(circuit, CouplingMap::line(8));
    ChannelSampler sampler(machinePreset("machineA"));

    Rng rng_a(8), rng_b(9);
    const auto ideal_state = hammer::sim::runCircuit(circuit);
    const auto ideal = Distribution::fromProbabilityFn(
        8, [&](std::size_t i) { return ideal_state.probability(i); });
    const auto d_unrouted = sampler.sample(unrouted, 8, 12000, rng_a);
    const auto d_routed = sampler.sample(routed, 8, 12000, rng_b);
    EXPECT_GT(hammer::metrics::classicalFidelity(d_unrouted, ideal),
              hammer::metrics::classicalFidelity(d_routed, ideal));
}

TEST(ChannelSampler, DeterministicForFixedSeed)
{
    const auto routed = trivialRouting(ghz(5));
    ChannelSampler sampler(machinePreset("machineC"));
    Rng a(10), b(10);
    const Distribution da = sampler.sample(routed, 5, 2000, a);
    const Distribution db = sampler.sample(routed, 5, 2000, b);
    ASSERT_EQ(da.support(), db.support());
    for (const auto &e : da.entries())
        EXPECT_DOUBLE_EQ(e.probability, db.probability(e.outcome));
}

TEST(ChannelSampler, RejectsBadParamsAndArguments)
{
    ChannelParams bad;
    bad.maxScramble = 1.0;
    EXPECT_THROW(ChannelSampler(machinePreset("machineA"), bad),
                 std::invalid_argument);

    const auto routed = trivialRouting(ghz(4));
    ChannelSampler sampler(machinePreset("machineA"));
    Rng rng(11);
    EXPECT_THROW(sampler.sample(routed, 0, 100, rng),
                 std::invalid_argument);
    EXPECT_THROW(sampler.sample(routed, 4, -1, rng),
                 std::invalid_argument);
}

} // namespace
