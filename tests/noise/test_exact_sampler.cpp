/**
 * @file
 * Unit tests for the exact density-matrix sampler, including the
 * cross-backend validation: the trajectory backend's histogram must
 * converge to the exact channel evolution.
 */

#include <gtest/gtest.h>

#include "circuits/bv.hpp"
#include "circuits/ghz.hpp"
#include "circuits/transpiler.hpp"
#include "metrics/metrics.hpp"
#include "noise/exact_sampler.hpp"
#include "noise/trajectory_sampler.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using hammer::core::Distribution;
using namespace hammer::circuits;
using namespace hammer::noise;

TEST(ExactSampler, IdealModelReproducesIdealOutput)
{
    ExactSampler sampler(machinePreset("ideal"));
    const auto routed = trivialRouting(bernsteinVazirani(4, 0b1011));
    const Distribution exact = sampler.exactDistribution(routed, 4);
    EXPECT_EQ(exact.support(), 1u);
    EXPECT_NEAR(exact.probability(0b1011), 1.0, 1e-9);
}

TEST(ExactSampler, ExactDistributionIsNormalised)
{
    ExactSampler sampler(machinePreset("machineB").scaled(3.0));
    const auto routed = trivialRouting(ghz(5));
    const Distribution exact = sampler.exactDistribution(routed, 5);
    EXPECT_TRUE(exact.normalized(1e-8));
}

TEST(ExactSampler, NoiseSpreadsMassOffThePoles)
{
    ExactSampler sampler(machinePreset("machineB").scaled(3.0));
    const auto routed = trivialRouting(ghz(4));
    const Distribution exact = sampler.exactDistribution(routed, 4);
    const double poles = exact.probability(0b0000) +
                         exact.probability(0b1111);
    EXPECT_LT(poles, 1.0);
    EXPECT_GT(poles, 0.5) << "structure must survive moderate noise";
    EXPECT_GT(exact.support(), 2u);
}

TEST(ExactSampler, TrajectoryBackendConvergesToExact)
{
    // The headline validation: Monte-Carlo Pauli trajectories
    // unravel exactly the channels the density matrix evolves, so
    // with enough trajectories the TVD between the two must be
    // small.  Readout disabled to isolate the gate channels.
    const NoiseModel model{0.01, 0.05, 0.0, 0.0};
    const auto routed = trivialRouting(ghz(4));

    ExactSampler exact(model);
    const Distribution truth = exact.exactDistribution(routed, 4);

    TrajectorySampler trajectories(model, 3000);
    Rng rng(5);
    const Distribution sampled =
        trajectories.sample(routed, 4, 60000, rng);

    EXPECT_LT(hammer::metrics::tvd(truth, sampled), 0.02)
        << "trajectory unravelling must converge to the exact "
           "channel";
}

TEST(ExactSampler, TrajectoryConvergesToExactWithReadout)
{
    const NoiseModel model{0.005, 0.03, 0.02, 0.05};
    const auto routed = trivialRouting(bernsteinVazirani(4, 0b1111));

    ExactSampler exact(model);
    const Distribution truth = exact.exactDistribution(routed, 4);

    TrajectorySampler trajectories(model, 2500);
    Rng rng(6);
    const Distribution sampled =
        trajectories.sample(routed, 4, 50000, rng);

    EXPECT_LT(hammer::metrics::tvd(truth, sampled), 0.025);
}

TEST(ExactSampler, SampleMatchesExactDistribution)
{
    const NoiseModel model = machinePreset("machineA").scaled(2.0);
    ExactSampler sampler(model);
    const auto routed = trivialRouting(ghz(4));
    const Distribution exact = sampler.exactDistribution(routed, 4);
    Rng rng(7);
    const Distribution sampled = sampler.sample(routed, 4, 80000, rng);
    EXPECT_LT(hammer::metrics::tvd(exact, sampled), 0.02);
}

TEST(ExactSampler, MarginalisesAncilla)
{
    ExactSampler sampler(machinePreset("machineA"));
    const auto routed = trivialRouting(bernsteinVazirani(3, 0b101));
    const Distribution exact = sampler.exactDistribution(routed, 3);
    EXPECT_EQ(exact.numBits(), 3);
    for (const auto &e : exact.entries())
        EXPECT_LT(e.outcome, Bits{1} << 3);
}

TEST(ExactSampler, RespectsRoutedLayoutPermutation)
{
    // Routing through SWAPs must not change the logical answer.
    const Bits key = 0b1101;
    const auto routed = transpile(bernsteinVazirani(4, key),
                                  CouplingMap::line(5));
    ExactSampler sampler(machinePreset("ideal"));
    const Distribution exact = sampler.exactDistribution(routed, 4);
    EXPECT_NEAR(exact.probability(key), 1.0, 1e-9);
}

TEST(ExactSampler, RejectsOversizedCircuits)
{
    ExactSampler sampler(machinePreset("machineA"));
    const auto routed = trivialRouting(bernsteinVazirani(11, 1));
    Rng rng(8);
    EXPECT_THROW(sampler.sample(routed, 11, 100, rng),
                 std::invalid_argument);
}

TEST(ExactSampler, RejectsOutOfRangeModel)
{
    EXPECT_THROW(ExactSampler(NoiseModel{0.9, 0.0, 0.0, 0.0}),
                 std::invalid_argument);
}

} // namespace
