/**
 * @file
 * Unit tests for noise model presets and scaling.
 */

#include <gtest/gtest.h>

#include "noise/noise_model.hpp"

namespace {

using namespace hammer::noise;

TEST(NoiseModel, IdealPresetIsNoiseless)
{
    const NoiseModel m = machinePreset("ideal");
    EXPECT_DOUBLE_EQ(m.p1q, 0.0);
    EXPECT_DOUBLE_EQ(m.p2q, 0.0);
    EXPECT_DOUBLE_EQ(m.readout01, 0.0);
    EXPECT_DOUBLE_EQ(m.readout10, 0.0);
}

TEST(NoiseModel, PresetsInPaperRanges)
{
    for (const auto &name : machinePresetNames()) {
        if (name == "ideal")
            continue;
        const NoiseModel m = machinePreset(name);
        EXPECT_GT(m.p1q, 0.0) << name;
        EXPECT_LT(m.p1q, 0.01) << name << ": 1q error ~0.1%";
        EXPECT_GT(m.p2q, 0.001) << name;
        EXPECT_LT(m.p2q, 0.05) << name << ": 2q error 1-2%";
        EXPECT_LT(m.readout01, 0.1) << name;
        EXPECT_LT(m.readout10, 0.1) << name;
    }
}

TEST(NoiseModel, MachinesHaveDistinctProfiles)
{
    const NoiseModel a = machinePreset("machineA");
    const NoiseModel b = machinePreset("machineB");
    const NoiseModel c = machinePreset("machineC");
    EXPECT_NE(a.p2q, b.p2q);
    EXPECT_NE(a.readout01, c.readout01);
    EXPECT_GT(b.p2q, a.p2q) << "machineB is gate-error heavy";
    EXPECT_GT(c.readout01, a.readout01) << "machineC is readout heavy";
}

TEST(NoiseModel, ReadoutAsymmetryModelsRelaxation)
{
    // 1 -> 0 errors (relaxation during readout) should dominate.
    for (const std::string name : {"machineA", "machineB", "machineC"}) {
        const NoiseModel m = machinePreset(name);
        EXPECT_GT(m.readout10, m.readout01) << name;
    }
}

TEST(NoiseModel, UnknownPresetRejected)
{
    EXPECT_THROW(machinePreset("hal9000"), std::invalid_argument);
}

TEST(NoiseModel, ScaledMultipliesEveryRate)
{
    const NoiseModel m = machinePreset("machineA");
    const NoiseModel twice = m.scaled(2.0);
    EXPECT_DOUBLE_EQ(twice.p1q, 2.0 * m.p1q);
    EXPECT_DOUBLE_EQ(twice.p2q, 2.0 * m.p2q);
    EXPECT_DOUBLE_EQ(twice.readout01, 2.0 * m.readout01);
    EXPECT_DOUBLE_EQ(twice.readout10, 2.0 * m.readout10);
}

TEST(NoiseModel, ScaledClampsAtHalf)
{
    const NoiseModel m = machinePreset("machineB").scaled(1000.0);
    EXPECT_LE(m.p2q, 0.5);
    EXPECT_LE(m.readout10, 0.5);
}

TEST(NoiseModel, ScaledZeroIsIdeal)
{
    const NoiseModel m = machinePreset("machineA").scaled(0.0);
    EXPECT_DOUBLE_EQ(m.p2q, 0.0);
}

TEST(NoiseModel, ScaledRejectsNegativeFactor)
{
    EXPECT_THROW(machinePreset("machineA").scaled(-1.0),
                 std::invalid_argument);
}

TEST(NoiseModel, PresetNamesListIsConsistent)
{
    for (const auto &name : machinePresetNames())
        EXPECT_NO_THROW(machinePreset(name));
    EXPECT_GE(machinePresetNames().size(), 5u);
}

} // namespace
