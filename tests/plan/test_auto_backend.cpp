/**
 * @file
 * The `auto` backend: registry integration, bit-identity with the
 * selected backend, calibration-forced plan choices, calibration
 * JSON round-trips and the --explain-plan dump.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "api/api.hpp"
#include "api/autoplan.hpp"
#include "common/rng.hpp"
#include "plan/cost_model.hpp"

namespace {

using hammer::api::AutoSampler;
using hammer::api::BackendRegistry;
using hammer::api::BackendSpec;
using hammer::api::calibrationJson;
using hammer::api::estimateSpecCost;
using hammer::api::explainPlan;
using hammer::api::ExperimentSpec;
using hammer::api::parseCalibration;
using hammer::api::Workload;
using hammer::api::WorkloadRegistry;
using hammer::core::Distribution;
using hammer::plan::activeCalibration;
using hammer::plan::CalibrationTable;
using hammer::plan::defaultCalibrationTable;
using hammer::plan::setActiveCalibration;

/** Restore the process-wide calibration on scope exit. */
class ScopedCalibration
{
  public:
    ScopedCalibration() : saved_(activeCalibration()) {}
    ~ScopedCalibration() { setActiveCalibration(saved_); }

  private:
    CalibrationTable saved_;
};

bool
identical(const Distribution &a, const Distribution &b)
{
    if (a.numBits() != b.numBits() || a.support() != b.support())
        return false;
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        if (a.entries()[i].outcome != b.entries()[i].outcome ||
            a.entries()[i].probability != b.entries()[i].probability)
            return false;
    }
    return true;
}

BackendSpec
smallSpec()
{
    BackendSpec spec;
    spec.shots = 1500;
    spec.trajectories = 30;
    spec.seed = 11;
    return spec;
}

} // namespace

TEST(AutoBackend, RegisteredAlongsideTheHandPickedBackends)
{
    const BackendRegistry &registry = BackendRegistry::global();
    EXPECT_TRUE(registry.contains("auto"));
    EXPECT_EQ(registry.names().size(), 6u);
}

TEST(AutoBackend, BitIdenticalToTheSelectedBackend)
{
    const ScopedCalibration guard;
    setActiveCalibration(defaultCalibrationTable());

    for (const char *workloadSpec : {"bv:7", "qaoa:ring:6:1"}) {
        hammer::common::Rng wrng(3);
        const Workload workload =
            WorkloadRegistry::global().make(workloadSpec, wrng);
        const BackendSpec spec = smallSpec();

        AutoSampler autoSampler(spec);
        hammer::common::Rng arng(spec.seed);
        const Distribution autoDist = autoSampler.sampleBatch(
            workload.routed, workload.measuredQubits, spec.shots,
            arng, 1);
        const std::string selected =
            autoSampler.lastChoice().backend;

        auto direct = BackendRegistry::global().make(selected, spec);
        hammer::common::Rng drng(spec.seed);
        const Distribution directDist = direct->sampleBatch(
            workload.routed, workload.measuredQubits, spec.shots,
            drng, 1);
        EXPECT_TRUE(identical(autoDist, directDist))
            << workloadSpec << " via " << selected;
    }
}

TEST(AutoBackend, CalibrationForcesThePlanChoice)
{
    const ScopedCalibration guard;
    hammer::common::Rng wrng(3);
    // 13 physical qubits: the exact backends are not candidates, so
    // the choice is channel vs trajectory and the table decides.
    const Workload workload =
        WorkloadRegistry::global().make("bv:12", wrng);
    const BackendSpec spec = smallSpec();

    CalibrationTable channelHostile = defaultCalibrationTable();
    channelHostile.channelFlipNs = 1e9;
    setActiveCalibration(channelHostile);
    AutoSampler a(spec);
    hammer::common::Rng rng1(spec.seed);
    (void)a.sample(workload.routed, workload.measuredQubits, 100,
                   rng1);
    EXPECT_EQ(a.lastChoice().backend, "trajectory");

    CalibrationTable trajectoryHostile = defaultCalibrationTable();
    trajectoryHostile.checkpointRowNs = 1e9;
    trajectoryHostile.injectionWeight = 1e9;
    setActiveCalibration(trajectoryHostile);
    AutoSampler b(spec);
    hammer::common::Rng rng2(spec.seed);
    (void)b.sample(workload.routed, workload.measuredQubits, 100,
                   rng2);
    EXPECT_EQ(b.lastChoice().backend, "channel");
}

TEST(AutoBackend, RankingIsDeterministic)
{
    const ScopedCalibration guard;
    setActiveCalibration(defaultCalibrationTable());
    hammer::common::Rng wrng(3);
    const Workload workload =
        WorkloadRegistry::global().make("bv:6", wrng);
    const AutoSampler sampler(smallSpec());
    const auto a =
        sampler.rank(workload.routed, workload.measuredQubits);
    const auto b =
        sampler.rank(workload.routed, workload.measuredQubits);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].choice.backend, b[i].choice.backend);
        EXPECT_EQ(a[i].cost.seconds, b[i].cost.seconds);
    }
}

TEST(Calibration, JsonRoundTripsEveryCoefficient)
{
    CalibrationTable table = defaultCalibrationTable();
    table.dense1qRowNs = 2.5;
    table.dispatchOverheadRows = 640.0;
    table.injectionWeight = 1.25;
    table.shotNs = 42.0;
    table.version = 7;

    const CalibrationTable parsed =
        parseCalibration(calibrationJson(table));
    EXPECT_EQ(parsed.dense1qRowNs, table.dense1qRowNs);
    EXPECT_EQ(parsed.diagRowNs, table.diagRowNs);
    EXPECT_EQ(parsed.permRowNs, table.permRowNs);
    EXPECT_EQ(parsed.twoqRowNs, table.twoqRowNs);
    EXPECT_EQ(parsed.dispatchOverheadRows,
              table.dispatchOverheadRows);
    EXPECT_EQ(parsed.injectionWeight, table.injectionWeight);
    EXPECT_EQ(parsed.checkpointRowNs, table.checkpointRowNs);
    EXPECT_EQ(parsed.shotNs, table.shotNs);
    EXPECT_EQ(parsed.channelFlipNs, table.channelFlipNs);
    EXPECT_EQ(parsed.densityRowNs, table.densityRowNs);
    EXPECT_EQ(parsed.cacheHitNs, table.cacheHitNs);
    EXPECT_EQ(parsed.planOverheadNs, table.planOverheadNs);
    EXPECT_EQ(parsed.version, table.version);
}

TEST(Calibration, RejectsUnknownCoefficientsAndBadValues)
{
    EXPECT_THROW(parseCalibration("{\"type\":\"hammer_calibration\","
                                  "\"version\":1,\"coefficients\":"
                                  "{\"bogus_ns\":1.0}}"),
                 std::invalid_argument);
    EXPECT_THROW(parseCalibration("{\"type\":\"hammer_calibration\","
                                  "\"version\":1,\"coefficients\":"
                                  "{\"shot_ns\":-1.0}}"),
                 std::invalid_argument);
    EXPECT_THROW(parseCalibration("not json"),
                 std::invalid_argument);
}

TEST(Admission, SpecCostEstimateIsPositiveAndMonotoneInShots)
{
    const ScopedCalibration guard;
    setActiveCalibration(defaultCalibrationTable());
    ExperimentSpec spec;
    spec.workload = "bv:8";
    spec.backend = "channel";
    spec.backendSpec.shots = 1000;
    const double small = estimateSpecCost(spec);
    EXPECT_GT(small, 0.0);

    spec.backendSpec.shots = 64000;
    EXPECT_GE(estimateSpecCost(spec), small);

    // Never throws, whatever the workload string looks like.
    ExperimentSpec garbage;
    garbage.workload = "???";
    EXPECT_GT(estimateSpecCost(garbage), 0.0);
}

TEST(ExplainPlan, ListsRankedCandidates)
{
    const ScopedCalibration guard;
    setActiveCalibration(defaultCalibrationTable());
    ExperimentSpec spec;
    spec.workload = "bv:6";
    spec.backend = "auto";
    spec.backendSpec = smallSpec();
    const std::string text = explainPlan(spec);
    EXPECT_NE(text.find("bv:6"), std::string::npos);
    EXPECT_NE(text.find("channel"), std::string::npos);
    EXPECT_NE(text.find("trajectory"), std::string::npos);
    EXPECT_NE(text.find("->"), std::string::npos);
}
