/**
 * @file
 * Chaos leg for the `auto` backend: under injected worker deaths the
 * service still answers every auto-planned job with a Result that is
 * bit-identical to an undisturbed run — the cost model picks plans,
 * it never touches the deterministic replay contract.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "api/service.hpp"
#include "chaos/fault_plan.hpp"
#include "core/distribution.hpp"

namespace {

using hammer::api::ExecutionService;
using hammer::api::ExecutionServiceOptions;
using hammer::api::ExperimentSpec;
using hammer::api::Pipeline;
using hammer::api::Result;
using hammer::chaos::FaultPlan;
using hammer::chaos::FaultPlanOptions;
using hammer::core::Distribution;

constexpr std::chrono::milliseconds kDeadline{30000};

bool
identical(const Distribution &a, const Distribution &b)
{
    if (a.numBits() != b.numBits() || a.support() != b.support())
        return false;
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        if (a.entries()[i].outcome != b.entries()[i].outcome ||
            a.entries()[i].probability != b.entries()[i].probability)
            return false;
    }
    return true;
}

std::vector<ExperimentSpec>
autoSpecs()
{
    std::vector<ExperimentSpec> specs;
    for (std::uint64_t seed : {1, 2, 3}) {
        ExperimentSpec bv;
        bv.workload = "bv:6";
        bv.backend = "auto";
        bv.backendSpec.shots = 1500;
        bv.backendSpec.trajectories = 25;
        bv.backendSpec.seed = seed;
        specs.push_back(bv);

        ExperimentSpec qaoa;
        qaoa.workload = "qaoa:ring:6:1";
        qaoa.backend = "auto";
        qaoa.backendSpec.shots = 1200;
        qaoa.backendSpec.trajectories = 25;
        qaoa.backendSpec.seed = seed;
        specs.push_back(qaoa);
    }
    return specs;
}

} // namespace

TEST(PlanChaos, AutoSurvivesWorkerDeathsBitIdentically)
{
    const auto specs = autoSpecs();

    // Undisturbed reference: the synchronous pipeline.
    const Pipeline pipeline;
    std::vector<Result> expected;
    for (const ExperimentSpec &spec : specs)
        expected.push_back(pipeline.run(spec));

    for (const int workers : {1, 2, 4}) {
        FaultPlanOptions faults;
        faults.workerKillRate = 0.2;
        ExecutionServiceOptions options;
        options.workers = workers;
        options.maxRetries = 6;
        options.faultInjector = std::make_shared<FaultPlan>(99, faults);
        ExecutionService service(options);

        std::vector<ExecutionService::JobHandle> handles;
        for (const ExperimentSpec &spec : specs)
            handles.push_back(service.submit(spec));
        for (std::size_t i = 0; i < handles.size(); ++i) {
            const auto result = service.waitFor(handles[i], kDeadline);
            ASSERT_TRUE(result.has_value())
                << workers << " workers, job " << i;
            EXPECT_TRUE(identical(expected[i].raw, result->raw))
                << workers << " workers, job " << i << ": raw";
            EXPECT_TRUE(
                identical(expected[i].mitigated, result->mitigated))
                << workers << " workers, job " << i << ": mitigated";
        }
    }
}

TEST(PlanChaos, SameSeedReplaysTheSameFaultsAndResults)
{
    const auto specs = autoSpecs();
    const auto runOnce = [&specs] {
        FaultPlanOptions faults;
        faults.workerKillRate = 0.25;
        ExecutionServiceOptions options;
        options.workers = 2;
        options.maxRetries = 6;
        options.faultInjector =
            std::make_shared<FaultPlan>(4242, faults);
        ExecutionService service(options);
        return service.runMany(specs);
    };

    const std::vector<Result> first = runOnce();
    const std::vector<Result> second = runOnce();
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_TRUE(identical(first[i].raw, second[i].raw))
            << "job " << i << ": raw diverged across replays";
        EXPECT_TRUE(
            identical(first[i].mitigated, second[i].mitigated))
            << "job " << i << ": mitigated diverged across replays";
    }
}
