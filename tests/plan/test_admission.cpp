/**
 * @file
 * Cost-aware admission control: the thread pool's aged-FIFO order
 * bias (the mechanism) and the ExecutionService's estimated-cost
 * bias + drift telemetry (the policy), across 1/2/4 workers.
 */

#include <gtest/gtest.h>

#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "api/service.hpp"
#include "common/thread_pool.hpp"

namespace {

using hammer::api::ExecutionService;
using hammer::api::ExecutionServiceOptions;
using hammer::api::ExperimentSpec;
using hammer::common::ThreadPool;

ExperimentSpec
bvSpec(int size, std::uint64_t seed)
{
    ExperimentSpec spec;
    spec.workload = "bv:" + std::to_string(size);
    spec.backend = "channel";
    spec.backendSpec.shots = 1000;
    spec.backendSpec.seed = seed;
    return spec;
}

/**
 * Park every dedicated worker of @p pool on a gate job, so the test
 * thread can drain the queue deterministically via tryRunOneJob.
 * Returns the release promise; destroy after draining.
 */
class ParkedWorkers
{
  public:
    explicit ParkedWorkers(ThreadPool &pool)
        : release_(gate_.get_future().share())
    {
        const int workers = pool.threadCount() - 1;
        std::vector<std::future<void>> started;
        for (int i = 0; i < workers; ++i) {
            auto flag = std::make_shared<std::promise<void>>();
            started.push_back(flag->get_future());
            auto release = release_;
            parked_.push_back(pool.submit([flag, release] {
                flag->set_value();
                release.wait();
            }));
        }
        for (auto &flag : started)
            flag.wait();
    }

    ~ParkedWorkers()
    {
        gate_.set_value();
        for (auto &job : parked_)
            job.wait();
    }

  private:
    std::promise<void> gate_;
    std::shared_future<void> release_;
    std::vector<std::future<void>> parked_;
};

} // namespace

TEST(OrderBias, AgesAJobBehindLaterCheapSubmissions)
{
    for (const int threads : {2, 4}) {
        ThreadPool pool(threads);
        ParkedWorkers parked(pool);

        std::mutex mutex;
        std::vector<std::string> order;
        const auto record = [&](const char *name) {
            return [&order, &mutex, name] {
                const std::lock_guard<std::mutex> lock(mutex);
                order.emplace_back(name);
            };
        };

        // "expensive" carries a large bias; the cheap jobs submitted
        // after it must run first (aged FIFO within the priority).
        auto expensive =
            pool.submit(record("expensive"), 0, /*orderBias=*/10);
        auto cheap1 = pool.submit(record("cheap1"));
        auto cheap2 = pool.submit(record("cheap2"));
        auto cheap3 = pool.submit(record("cheap3"));

        while (pool.tryRunOneJob()) {
        }
        expensive.wait();
        cheap1.wait();
        cheap2.wait();
        cheap3.wait();

        const std::vector<std::string> expected = {
            "cheap1", "cheap2", "cheap3", "expensive"};
        EXPECT_EQ(order, expected) << threads << " threads";
    }
}

TEST(OrderBias, BiasIsAStarvationBound)
{
    ThreadPool pool(2);
    ParkedWorkers parked(pool);

    std::mutex mutex;
    std::vector<int> order;
    const auto record = [&](int id) {
        return [&order, &mutex, id] {
            const std::lock_guard<std::mutex> lock(mutex);
            order.push_back(id);
        };
    };

    // Bias 3: the job yields to at most 3 later zero-bias
    // submissions, however many keep arriving after that.
    auto biased = pool.submit(record(-1), 0, /*orderBias=*/3);
    std::vector<std::future<void>> cheap;
    for (int i = 0; i < 8; ++i)
        cheap.push_back(pool.submit(record(i)));

    while (pool.tryRunOneJob()) {
    }
    biased.wait();
    for (auto &job : cheap)
        job.wait();

    ASSERT_EQ(order.size(), 9u);
    std::size_t position = order.size();
    for (std::size_t i = 0; i < order.size(); ++i)
        if (order[i] == -1)
            position = i;
    EXPECT_LE(position, 3u)
        << "bias 3 must not starve past 3 cheap jobs";
}

TEST(OrderBias, NeverCrossesPriorityLevels)
{
    ThreadPool pool(2);
    ParkedWorkers parked(pool);

    std::mutex mutex;
    std::vector<std::string> order;
    const auto record = [&](const char *name) {
        return [&order, &mutex, name] {
            const std::lock_guard<std::mutex> lock(mutex);
            order.emplace_back(name);
        };
    };

    auto low = pool.submit(record("low"), /*priority=*/0);
    auto high = pool.submit(record("high"), /*priority=*/1,
                            /*orderBias=*/1000000);
    while (pool.tryRunOneJob()) {
    }
    low.wait();
    high.wait();

    const std::vector<std::string> expected = {"high", "low"};
    EXPECT_EQ(order, expected);
}

TEST(OrderBias, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    bool ran = false;
    auto job = pool.submit([&ran] { ran = true; }, 0,
                           /*orderBias=*/1000);
    EXPECT_TRUE(ran) << "inline path must ignore the bias";
    job.wait();
}

TEST(ServiceAdmission, TracksPredictedAndMeasuredCost)
{
    for (const int workers : {1, 2, 4}) {
        ExecutionServiceOptions options;
        options.workers = workers;
        ExecutionService service(options);

        std::vector<ExperimentSpec> specs;
        for (std::uint64_t seed = 1; seed <= 6; ++seed)
            specs.push_back(bvSpec(6, seed));
        std::vector<ExecutionService::JobHandle> handles;
        for (const ExperimentSpec &spec : specs) {
            handles.push_back(service.submit(spec));
            EXPECT_GT(handles.back().estimatedCost(), 0.0);
        }
        for (auto &handle : handles)
            (void)service.wait(handle);

        const auto stats = service.stats();
        EXPECT_GT(stats.predictedCostSeconds, 0.0)
            << workers << " workers";
        EXPECT_GT(stats.measuredCostSeconds, 0.0)
            << workers << " workers";
        if (workers == 1) {
            EXPECT_EQ(stats.queuePeakDepth, 0u)
                << "inline execution never queues";
        }
    }
}

TEST(ServiceAdmission, CostBiasNeverChangesResults)
{
    ExecutionServiceOptions plain;
    plain.workers = 2;
    plain.costBiasPerSecond = 0.0;
    ExecutionService unbiased(plain);

    ExecutionServiceOptions aggressive;
    aggressive.workers = 2;
    aggressive.costBiasPerSecond = 1e9;
    aggressive.costBiasCap = 64;
    ExecutionService biased(aggressive);

    std::vector<ExperimentSpec> specs;
    specs.push_back(bvSpec(8, 1));
    specs.push_back(bvSpec(6, 2));
    specs.push_back(bvSpec(7, 3));
    specs.push_back(bvSpec(6, 4));

    const auto a = unbiased.runMany(specs);
    const auto b = biased.runMany(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].raw.entries().size(),
                  b[i].raw.entries().size());
        for (std::size_t e = 0; e < a[i].raw.entries().size(); ++e) {
            EXPECT_EQ(a[i].raw.entries()[e].outcome,
                      b[i].raw.entries()[e].outcome);
            EXPECT_EQ(a[i].raw.entries()[e].probability,
                      b[i].raw.entries()[e].probability);
        }
    }
}

TEST(ServiceAdmission, QueuePeakDepthAppearsInStatsJson)
{
    ExecutionServiceOptions options;
    options.workers = 2;
    ExecutionService service(options);
    std::vector<ExperimentSpec> specs;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        specs.push_back(bvSpec(6, seed));
    (void)service.runMany(specs);

    const std::string json = hammer::api::serviceStatsJson(
        service.stats(), service.workers());
    EXPECT_NE(json.find("\"queue_peak_depth\""), std::string::npos);
    EXPECT_NE(json.find("\"predicted_cost_seconds\""),
              std::string::npos);
    EXPECT_NE(json.find("\"measured_cost_seconds\""),
              std::string::npos);
}
