/**
 * @file
 * hammer::plan unit tests: cost-function purity and monotonicity,
 * deterministic plan ranking, replay-option plumbing, and the
 * least-squares calibration fit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "plan/cost_model.hpp"

namespace {

using hammer::plan::CalibrationSample;
using hammer::plan::CalibrationTable;
using hammer::plan::Calibrator;
using hammer::plan::defaultCalibrationTable;
using hammer::plan::estimateCost;
using hammer::plan::kCostGroups;
using hammer::plan::PlanChoice;
using hammer::plan::PlanCost;
using hammer::plan::PlanFeatures;
using hammer::plan::rankPlans;
using hammer::plan::RankedPlan;
using hammer::plan::replayOptionsFor;

PlanFeatures
baseFeatures()
{
    PlanFeatures f;
    f.qubits = 8;
    f.dense1q = 12;
    f.diag = 6;
    f.perm = 3;
    f.twoq = 9;
    f.sourceGates = 40;
    f.source2q = 10;
    f.expectedErrors = 0.35;
    f.zeroErrorFraction = 0.7;
    f.shots = 4096;
    f.trajectories = 200;
    return f;
}

} // namespace

TEST(CostModel, EstimateIsPure)
{
    const PlanFeatures f = baseFeatures();
    const CalibrationTable table = defaultCalibrationTable();
    for (const char *backend : {"channel", "trajectory", "exact"}) {
        PlanChoice choice;
        choice.backend = backend;
        const PlanCost a = estimateCost(f, choice, table);
        const PlanCost b = estimateCost(f, choice, table);
        EXPECT_EQ(a.seconds, b.seconds) << backend;
        for (std::size_t g = 0; g < kCostGroups; ++g)
            EXPECT_EQ(a.groups[g], b.groups[g]) << backend;
    }
}

TEST(CostModel, GroupsSumToTotal)
{
    const PlanFeatures f = baseFeatures();
    const CalibrationTable table = defaultCalibrationTable();
    for (const char *backend : {"channel", "trajectory", "exact"}) {
        PlanChoice choice;
        choice.backend = backend;
        const PlanCost cost = estimateCost(f, choice, table);
        double sum = 0.0;
        for (std::size_t g = 0; g < kCostGroups; ++g) {
            EXPECT_GE(cost.groups[g], 0.0);
            sum += cost.groups[g];
        }
        EXPECT_NEAR(cost.seconds, sum, 1e-12 + 1e-9 * sum)
            << backend;
    }
}

TEST(CostModel, MonotoneInEveryLoadFeature)
{
    const PlanFeatures base = baseFeatures();
    const CalibrationTable table = defaultCalibrationTable();
    for (const char *backend : {"channel", "trajectory"}) {
        PlanChoice choice;
        choice.backend = backend;
        const double baseline =
            estimateCost(base, choice, table).seconds;

        PlanFeatures moreShots = base;
        moreShots.shots *= 4;
        EXPECT_GE(estimateCost(moreShots, choice, table).seconds,
                  baseline)
            << backend << ": more shots got cheaper";

        PlanFeatures moreTraj = base;
        moreTraj.trajectories *= 4;
        EXPECT_GE(estimateCost(moreTraj, choice, table).seconds,
                  baseline)
            << backend << ": more trajectories got cheaper";

        PlanFeatures moreGates = base;
        moreGates.dense1q += 50;
        moreGates.twoq += 50;
        moreGates.sourceGates += 100;
        EXPECT_GE(estimateCost(moreGates, choice, table).seconds,
                  baseline)
            << backend << ": more gates got cheaper";

        PlanFeatures moreQubits = base;
        moreQubits.qubits += 2;
        EXPECT_GE(estimateCost(moreQubits, choice, table).seconds,
                  baseline)
            << backend << ": more qubits got cheaper";
    }
}

TEST(CostModel, NarrowKernelTiersCostMore)
{
    const CalibrationTable table = defaultCalibrationTable();
    PlanChoice choice;
    choice.backend = "channel";
    PlanFeatures wide = baseFeatures();
    wide.kernelLanes = 4;
    PlanFeatures narrow = baseFeatures();
    narrow.kernelLanes = 1;
    EXPECT_GT(estimateCost(narrow, choice, table).seconds,
              estimateCost(wide, choice, table).seconds);
}

TEST(CostModel, RankingIsDeterministicForAFixedTable)
{
    const PlanFeatures f = baseFeatures();
    const CalibrationTable table = defaultCalibrationTable();
    const std::vector<RankedPlan> a = rankPlans(f, table);
    const std::vector<RankedPlan> b = rankPlans(f, table);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].choice.backend, b[i].choice.backend);
        EXPECT_EQ(a[i].choice.checkpointBudgetBytes,
                  b[i].choice.checkpointBudgetBytes);
        EXPECT_EQ(a[i].choice.batchLanes, b[i].choice.batchLanes);
        EXPECT_EQ(a[i].cost.seconds, b[i].cost.seconds);
    }
    // Cheapest first.
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LE(a[i - 1].cost.seconds, a[i].cost.seconds);
}

TEST(CostModel, ExactPlansOnlyWhenTheDensityMatrixFits)
{
    const CalibrationTable table = defaultCalibrationTable();
    PlanFeatures small = baseFeatures();
    small.qubits = 8;
    bool sawExact = false;
    for (const RankedPlan &plan : rankPlans(small, table))
        sawExact = sawExact || plan.choice.backend == "exact";
    EXPECT_TRUE(sawExact);

    PlanFeatures big = baseFeatures();
    big.qubits = 14;
    for (const RankedPlan &plan : rankPlans(big, table))
        EXPECT_NE(plan.choice.backend, "exact")
            << "14-qubit density matrix cannot fit";
}

TEST(CostModel, ReplayOptionsCarryTheFittedPlannerConstants)
{
    CalibrationTable table = defaultCalibrationTable();
    table.dispatchOverheadRows = 321.0;
    table.injectionWeight = 1.5;
    PlanChoice choice;
    choice.backend = "trajectory";
    choice.checkpointBudgetBytes = std::size_t{16} << 20;
    choice.batchLanes = 4;
    const auto options = replayOptionsFor(choice, table);
    EXPECT_EQ(options.checkpointBudgetBytes, std::size_t{16} << 20);
    EXPECT_EQ(options.batchLanes, 4);
    EXPECT_EQ(options.dispatchOverheadRows, 321.0);
    EXPECT_EQ(options.injectionWeight, 1.5);
}

TEST(Calibrator, RecoversRescaledCoefficients)
{
    // Ground truth: the default table with a few coefficients
    // rescaled.  Synthetic measurements are exact predictions under
    // the truth, so a correct fit must out-predict the seed.
    CalibrationTable truth = defaultCalibrationTable();
    truth.dense1qRowNs *= 2.0;
    truth.twoqRowNs *= 1.5;
    truth.shotNs *= 0.5;
    truth.channelFlipNs *= 3.0;

    Calibrator calibrator;
    std::vector<CalibrationSample> samples;
    for (int qubits : {4, 6, 8, 10, 12}) {
        for (int shots : {1024, 8192}) {
            for (const char *backend : {"channel", "trajectory"}) {
                CalibrationSample s;
                s.features = hammer::plan::approximateFeatures(
                    qubits, 3 * qubits + 5,
                    2 * qubits,
                    hammer::noise::NoiseModel{}, shots,
                    100 + 10 * qubits);
                s.choice.backend = backend;
                s.measuredSeconds =
                    estimateCost(s.features, s.choice, truth).seconds;
                calibrator.addSample(s);
                samples.push_back(s);
            }
        }
    }

    const CalibrationTable seed = defaultCalibrationTable();
    const CalibrationTable fitted = calibrator.fit(seed);
    EXPECT_EQ(fitted.version, seed.version + 1);

    double seedErr = 0.0;
    double fitErr = 0.0;
    for (const CalibrationSample &s : samples) {
        const double p0 =
            estimateCost(s.features, s.choice, seed).seconds;
        const double p1 =
            estimateCost(s.features, s.choice, fitted).seconds;
        seedErr += (p0 - s.measuredSeconds) * (p0 - s.measuredSeconds);
        fitErr += (p1 - s.measuredSeconds) * (p1 - s.measuredSeconds);
    }
    EXPECT_LT(fitErr, seedErr)
        << "fit must improve on the seed table";
    EXPECT_LT(std::sqrt(fitErr / samples.size()),
              0.25 * std::sqrt(seedErr / samples.size()))
        << "fit should recover most of the rescaling";
}

TEST(Calibrator, ScalesAreClampedAgainstWildTelemetry)
{
    Calibrator calibrator;
    CalibrationSample s;
    s.features = baseFeatures();
    s.choice.backend = "channel";
    // A measurement 10^6 x the prediction: the clamp keeps every
    // coefficient within [0.05, 20] x its seed value.
    s.measuredSeconds =
        estimateCost(s.features, s.choice, defaultCalibrationTable())
            .seconds *
        1e6;
    calibrator.addSample(s);

    const CalibrationTable seed = defaultCalibrationTable();
    const CalibrationTable fitted = calibrator.fit(seed);
    EXPECT_LE(fitted.dense1qRowNs, 20.0 * seed.dense1qRowNs + 1e-9);
    EXPECT_LE(fitted.shotNs, 20.0 * seed.shotNs + 1e-9);
    EXPECT_GE(fitted.dense1qRowNs, 0.05 * seed.dense1qRowNs - 1e-9);
}

TEST(Calibrator, FitWithNoSamplesKeepsTheSeed)
{
    const Calibrator calibrator;
    const CalibrationTable seed = defaultCalibrationTable();
    const CalibrationTable fitted = calibrator.fit(seed);
    EXPECT_EQ(fitted.dense1qRowNs, seed.dense1qRowNs);
    EXPECT_EQ(fitted.shotNs, seed.shotNs);
    EXPECT_EQ(fitted.dispatchOverheadRows,
              seed.dispatchOverheadRows);
}
