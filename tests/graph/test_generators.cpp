/**
 * @file
 * Unit tests for the graph generators backing Tables 1-2 workloads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace {

using hammer::common::Rng;
using namespace hammer::graph;

TEST(Generators, ErdosRenyiConnectedAndSimple)
{
    Rng rng(1);
    for (int trial = 0; trial < 10; ++trial) {
        const Graph g = erdosRenyi(10, 0.4, rng);
        EXPECT_TRUE(g.connected());
        EXPECT_GT(g.numEdges(), 0u);
        EXPECT_LE(g.numEdges(), 45u);
    }
}

TEST(Generators, ErdosRenyiDensityTracksP)
{
    Rng rng(2);
    // Average edge count over several samples should approach
    // p * C(n, 2).
    const int n = 12;
    const double p = 0.5;
    double total = 0.0;
    const int samples = 40;
    for (int i = 0; i < samples; ++i)
        total += static_cast<double>(erdosRenyi(n, p, rng).numEdges());
    const double expected = p * n * (n - 1) / 2.0;
    EXPECT_NEAR(total / samples, expected, expected * 0.2);
}

TEST(Generators, ErdosRenyiRejectsBadP)
{
    Rng rng(3);
    EXPECT_THROW(erdosRenyi(5, 0.0, rng), std::invalid_argument);
    EXPECT_THROW(erdosRenyi(5, 1.5, rng), std::invalid_argument);
}

TEST(Generators, KRegularDegreesAreExact)
{
    Rng rng(4);
    for (int k : {2, 3, 4}) {
        const Graph g = kRegular(10, k, rng);
        for (int v = 0; v < g.numVertices(); ++v)
            EXPECT_EQ(g.degree(v), k) << "vertex " << v << " k=" << k;
        EXPECT_TRUE(g.connected());
    }
}

TEST(Generators, KRegularRejectsOddProduct)
{
    Rng rng(5);
    EXPECT_THROW(kRegular(5, 3, rng), std::invalid_argument);
    EXPECT_THROW(kRegular(4, 4, rng), std::invalid_argument);
}

TEST(Generators, RingIsTwoRegular)
{
    const Graph g = ring(7);
    EXPECT_EQ(g.numEdges(), 7u);
    for (int v = 0; v < 7; ++v)
        EXPECT_EQ(g.degree(v), 2);
    EXPECT_TRUE(g.connected());
}

TEST(Generators, GridShapeAndEdgeCount)
{
    const Graph g = grid(3, 4);
    EXPECT_EQ(g.numVertices(), 12);
    // rows*(cols-1) + (rows-1)*cols horizontal+vertical edges.
    EXPECT_EQ(g.numEdges(), static_cast<std::size_t>(3 * 3 + 2 * 4));
    EXPECT_TRUE(g.connected());
}

TEST(Generators, GridCornerDegreeIsTwo)
{
    const Graph g = grid(3, 3);
    EXPECT_EQ(g.degree(0), 2);  // corner
    EXPECT_EQ(g.degree(4), 4);  // centre
}

TEST(Generators, SherringtonKirkpatrickIsCompleteWithSignWeights)
{
    Rng rng(6);
    const int n = 8;
    const Graph g = sherringtonKirkpatrick(n, rng);
    EXPECT_EQ(g.numEdges(), static_cast<std::size_t>(n * (n - 1) / 2));
    for (const Edge &e : g.edges())
        EXPECT_DOUBLE_EQ(std::abs(e.weight), 1.0);
}

TEST(Generators, SherringtonKirkpatrickMixesSigns)
{
    Rng rng(7);
    const Graph g = sherringtonKirkpatrick(10, rng);
    int plus = 0, minus = 0;
    for (const Edge &e : g.edges())
        (e.weight > 0 ? plus : minus)++;
    EXPECT_GT(plus, 0);
    EXPECT_GT(minus, 0);
}

TEST(Generators, DeterministicForFixedSeed)
{
    Rng a(99), b(99);
    const Graph ga = erdosRenyi(9, 0.4, a);
    const Graph gb = erdosRenyi(9, 0.4, b);
    ASSERT_EQ(ga.numEdges(), gb.numEdges());
    for (std::size_t i = 0; i < ga.edges().size(); ++i) {
        EXPECT_EQ(ga.edges()[i].u, gb.edges()[i].u);
        EXPECT_EQ(ga.edges()[i].v, gb.edges()[i].v);
    }
}

} // namespace
