/**
 * @file
 * Unit tests for the Ising max-cut cost model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using namespace hammer::graph;

TEST(Maxcut, IsingCostOfTriangle)
{
    // Unweighted triangle: best cut crosses 2 edges -> cost -1;
    // uncut assignment has cost +3.
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    EXPECT_DOUBLE_EQ(isingCost(g, 0b000), 3.0);
    EXPECT_DOUBLE_EQ(isingCost(g, 0b001), -1.0);
    EXPECT_DOUBLE_EQ(isingCost(g, 0b011), -1.0);
}

TEST(Maxcut, CutWeightComplementInvariant)
{
    Rng rng(1);
    const Graph g = erdosRenyi(8, 0.5, rng);
    const Bits mask = (Bits{1} << 8) - 1;
    for (Bits x : {Bits{0b10110010}, Bits{0b00000001}, Bits{0b1111}}) {
        EXPECT_DOUBLE_EQ(cutWeight(g, x), cutWeight(g, x ^ mask))
            << "cut weight must be invariant under complement";
    }
}

TEST(Maxcut, IsingCostRelatesToCutWeight)
{
    // C(x) = totalWeight - 2 * cutWeight(x) for +/-1 spins.
    Rng rng(2);
    const Graph g = erdosRenyi(7, 0.4, rng);
    for (Bits x = 0; x < 32; ++x) {
        EXPECT_NEAR(isingCost(g, x),
                    g.totalWeight() - 2.0 * cutWeight(g, x), 1e-12);
    }
}

TEST(Maxcut, BruteForceFindsRingOptimum)
{
    // Even ring is bipartite: every edge can be cut, so the optimum
    // Ising cost is -numEdges.
    const Graph g = ring(6);
    const CutOptimum opt = bruteForceOptimum(g);
    EXPECT_DOUBLE_EQ(opt.minCost, -6.0);
    EXPECT_DOUBLE_EQ(opt.maxCost, 6.0);
    // The alternating assignments 010101 and 101010 must be optimal.
    const auto &cuts = opt.bestCuts;
    EXPECT_NE(std::find(cuts.begin(), cuts.end(), Bits{0b010101}),
              cuts.end());
    EXPECT_NE(std::find(cuts.begin(), cuts.end(), Bits{0b101010}),
              cuts.end());
}

TEST(Maxcut, BestCutsComeInComplementPairs)
{
    Rng rng(3);
    const Graph g = erdosRenyi(6, 0.6, rng);
    const CutOptimum opt = bruteForceOptimum(g);
    const Bits mask = (Bits{1} << 6) - 1;
    for (Bits cut : opt.bestCuts) {
        EXPECT_NE(std::find(opt.bestCuts.begin(), opt.bestCuts.end(),
                            cut ^ mask),
                  opt.bestCuts.end())
            << "complement of an optimal cut must be optimal";
    }
}

TEST(Maxcut, BestCutsActuallyOptimal)
{
    Rng rng(4);
    const Graph g = kRegular(8, 3, rng);
    const CutOptimum opt = bruteForceOptimum(g);
    ASSERT_FALSE(opt.bestCuts.empty());
    for (Bits cut : opt.bestCuts)
        EXPECT_NEAR(isingCost(g, cut), opt.minCost, 1e-9);
    // And no assignment beats them.
    for (Bits x = 0; x < (Bits{1} << 8); ++x)
        EXPECT_GE(isingCost(g, x), opt.minCost - 1e-9);
}

TEST(Maxcut, OddRingIsFrustrated)
{
    // An odd ring cannot cut all edges: optimum cuts n-1 of them.
    const Graph g = ring(5);
    const CutOptimum opt = bruteForceOptimum(g);
    EXPECT_DOUBLE_EQ(opt.minCost, -3.0); // 4 cut - 1 uncut
}

TEST(Maxcut, WeightedEdgesRespected)
{
    Graph g(2);
    g.addEdge(0, 1, -2.0);
    // Negative weight: cutting the edge *raises* the cost.
    EXPECT_DOUBLE_EQ(isingCost(g, 0b00), -2.0);
    EXPECT_DOUBLE_EQ(isingCost(g, 0b01), 2.0);
    const CutOptimum opt = bruteForceOptimum(g);
    EXPECT_DOUBLE_EQ(opt.minCost, -2.0);
}

TEST(Maxcut, BruteForceRejectsHugeInstances)
{
    EXPECT_THROW(bruteForceOptimum(Graph(27)), std::invalid_argument);
}

} // namespace
