/**
 * @file
 * Unit tests for the Graph container.
 */

#include <gtest/gtest.h>

#include "graph/graph.hpp"

namespace {

using hammer::graph::Graph;

TEST(Graph, StartsEdgeless)
{
    Graph g(4);
    EXPECT_EQ(g.numVertices(), 4);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(Graph, AddEdgeIsUndirected)
{
    Graph g(3);
    g.addEdge(0, 2);
    EXPECT_TRUE(g.hasEdge(0, 2));
    EXPECT_TRUE(g.hasEdge(2, 0));
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(Graph, RejectsSelfLoopAndDuplicates)
{
    Graph g(3);
    g.addEdge(0, 1);
    EXPECT_THROW(g.addEdge(1, 1), std::invalid_argument);
    EXPECT_THROW(g.addEdge(0, 1), std::invalid_argument);
    EXPECT_THROW(g.addEdge(1, 0), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoints)
{
    Graph g(3);
    EXPECT_THROW(g.addEdge(0, 3), std::invalid_argument);
    EXPECT_THROW(g.addEdge(-1, 1), std::invalid_argument);
}

TEST(Graph, RejectsBadVertexCount)
{
    EXPECT_THROW(Graph(0), std::invalid_argument);
    EXPECT_THROW(Graph(65), std::invalid_argument);
}

TEST(Graph, DegreeCountsIncidentEdges)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(0, 3);
    EXPECT_EQ(g.degree(0), 3);
    EXPECT_EQ(g.degree(1), 1);
}

TEST(Graph, TotalWeightSumsEdgeWeights)
{
    Graph g(3);
    g.addEdge(0, 1, 2.5);
    g.addEdge(1, 2, -1.0);
    EXPECT_DOUBLE_EQ(g.totalWeight(), 1.5);
}

TEST(Graph, ConnectedDetectsComponents)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    EXPECT_FALSE(g.connected());
    g.addEdge(1, 2);
    EXPECT_TRUE(g.connected());
}

TEST(Graph, SingleVertexIsConnected)
{
    EXPECT_TRUE(Graph(1).connected());
}

TEST(Graph, EdgesPreserveInsertionOrderAndWeights)
{
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, -1.0);
    ASSERT_EQ(g.edges().size(), 2u);
    EXPECT_EQ(g.edges()[0].u, 0);
    EXPECT_EQ(g.edges()[0].v, 1);
    EXPECT_DOUBLE_EQ(g.edges()[1].weight, -1.0);
}

} // namespace
