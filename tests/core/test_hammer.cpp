/**
 * @file
 * Unit tests for the HAMMER reconstruction (Algorithm 1), including
 * an exact hand-computed walkthrough of the paper's Fig. 6 example,
 * statistical improvement on a BV-like noisy distribution, and the
 * ablation knobs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/ehd.hpp"
#include "core/hammer.hpp"
#include "metrics/metrics.hpp"

namespace {

using hammer::common::Bits;
using hammer::core::Distribution;
using namespace hammer::core;

/** The output distribution of paper Fig. 6(a). */
Distribution
figure6Distribution()
{
    Distribution d(3);
    d.set(0b111, 0.30);
    d.set(0b101, 0.40);
    d.set(0b110, 0.05);
    d.set(0b011, 0.10);
    d.set(0b010, 0.10);
    d.set(0b001, 0.05);
    return d;
}

/**
 * A synthetic BV-style noisy histogram built from the exact local
 * bit-flip channel (each bit flips with probability eps), plus extra
 * mass on a dominant 2-bit-flip error — the structure of paper
 * Fig. 7/8.
 */
Distribution
bvLikeDistribution(int n, Bits key, double eps = 0.05,
                   double dominant_extra = 0.10)
{
    Distribution d(n);
    for (Bits x = 0; x < (Bits{1} << n); ++x) {
        const int dist = hammer::common::hammingDistance(x, key);
        d.set(x, std::pow(eps, dist) * std::pow(1.0 - eps, n - dist));
    }
    d.add(key ^ 0b11, dominant_extra);
    d.normalize();
    return d;
}

TEST(Hammer, WeightsMatchHandComputationOnFig6)
{
    const Distribution d = figure6Distribution();
    // n = 3 -> dmax = 1. Aggregate CHS: bin0 = 1.0 (total mass),
    // bin1 = 2.4 (hand-enumerated ordered pairs).
    const auto weights = hammerWeights(d);
    ASSERT_EQ(weights.size(), 2u);
    EXPECT_NEAR(weights[0], 1.0, 1e-12);
    EXPECT_NEAR(weights[1], 5.0 / 12.0, 1e-12);
}

TEST(Hammer, Fig6ExactReconstruction)
{
    const Distribution d = figure6Distribution();
    const Distribution out = reconstruct(d);

    // Hand-executed Algorithm 1 (W1 = 5/12):
    //   score(111) = 0.30 + W1*(0.10 + 0.05)          -> 0.10875 * ...
    //   score(101) = 0.40 + W1*(0.05 + 0.30)
    //   score(011) = score(010) = 0.10 + W1*0.05
    //   score(110) = score(001) = 0.05 (no lower-prob neighbours)
    // after P_out = score * P_in and normalisation by 0.35625:
    EXPECT_NEAR(out.probability(0b111), 0.10875 / 0.35625, 1e-9);
    EXPECT_NEAR(out.probability(0b101), 0.2183333333 / 0.35625, 1e-7);
    EXPECT_NEAR(out.probability(0b011), 0.0120833333 / 0.35625, 1e-7);
    EXPECT_NEAR(out.probability(0b010), 0.0120833333 / 0.35625, 1e-7);
    EXPECT_NEAR(out.probability(0b110), 0.0025 / 0.35625, 1e-9);
    EXPECT_NEAR(out.probability(0b001), 0.0025 / 0.35625, 1e-9);
}

TEST(Hammer, OutputIsNormalisedOverSameSupport)
{
    const Distribution d = bvLikeDistribution(10, 0b1111111111);
    const Distribution out = reconstruct(d);
    EXPECT_TRUE(out.normalized(1e-9));
    EXPECT_EQ(out.support(), d.support());
    for (const auto &e : d.entries())
        EXPECT_GE(out.probability(e.outcome), 0.0);
}

TEST(Hammer, ImprovesPstOnBvLikeDistribution)
{
    const Bits key = 0b1111111111;
    const Distribution d = bvLikeDistribution(10, key);
    const Distribution out = reconstruct(d);
    EXPECT_GT(hammer::metrics::pst(out, {key}),
              hammer::metrics::pst(d, {key}))
        << "HAMMER should boost the correct outcome's probability";
}

TEST(Hammer, ImprovesIstOnBvLikeDistribution)
{
    const Bits key = 0b1111111111;
    const Distribution d = bvLikeDistribution(10, key);
    const Distribution out = reconstruct(d);
    EXPECT_GT(hammer::metrics::ist(out, {key}),
              hammer::metrics::ist(d, {key}))
        << "the gap to the dominant incorrect outcome should shrink";
}

TEST(Hammer, IstGainExceedsPstGain)
{
    // Paper Fig. 8: the IST improvement (gmean 1.74x) is larger than
    // the PST improvement (gmean 1.38x) — HAMMER attenuates the
    // dominant incorrect outcome on top of boosting the correct one.
    const Bits key = 0b1111111111;
    for (double eps : {0.03, 0.05, 0.08}) {
        const Distribution d = bvLikeDistribution(10, key, eps, 0.12);
        const Distribution out = reconstruct(d);
        const double pst_gain = hammer::metrics::pst(out, {key}) /
                                hammer::metrics::pst(d, {key});
        const double ist_gain = hammer::metrics::ist(out, {key}) /
                                hammer::metrics::ist(d, {key});
        EXPECT_GT(ist_gain, pst_gain) << "eps " << eps;
    }
}

TEST(Hammer, ReducesEhdOnBvLikeDistribution)
{
    const Bits key = 0b1111111111;
    const Distribution d = bvLikeDistribution(10, key);
    const Distribution out = reconstruct(d);
    EXPECT_LT(expectedHammingDistance(out, {key}),
              expectedHammingDistance(d, {key}));
}

TEST(Hammer, CrushesUnstructuredSingletons)
{
    const Bits key = 0b1111111111;
    const Distribution d = bvLikeDistribution(10, key);
    const Distribution out = reconstruct(d);
    // The isolated far-tail outcome (all-zeros) has no neighbourhood;
    // its relative probability must drop.
    EXPECT_LT(out.probability(0) / d.probability(0), 1.0);
}

TEST(Hammer, SingleOutcomeIsFixedPoint)
{
    Distribution d(4);
    d.set(0b1010, 1.0);
    const Distribution out = reconstruct(d);
    EXPECT_EQ(out.support(), 1u);
    EXPECT_NEAR(out.probability(0b1010), 1.0, 1e-12);
}

TEST(Hammer, DeterministicAcrossCalls)
{
    const Distribution d = bvLikeDistribution(8, 0b10101010);
    const Distribution a = reconstruct(d);
    const Distribution b = reconstruct(d);
    ASSERT_EQ(a.support(), b.support());
    for (const auto &e : a.entries())
        EXPECT_DOUBLE_EQ(e.probability, b.probability(e.outcome));
}

TEST(Hammer, RejectsUnnormalisedInput)
{
    Distribution d(3);
    d.set(0b000, 0.4);
    d.set(0b111, 0.4);
    EXPECT_THROW(reconstruct(d), std::invalid_argument);
}

TEST(Hammer, RejectsEmptyInput)
{
    Distribution d(3);
    EXPECT_THROW(reconstruct(d), std::invalid_argument);
}

TEST(Hammer, StatsReportOperationCounts)
{
    const Distribution d = bvLikeDistribution(8, 0b11111111);
    HammerStats stats;
    reconstruct(d, {}, &stats);
    EXPECT_EQ(stats.uniqueOutcomes, d.support());
    EXPECT_EQ(stats.maxDistance, 3); // floor((8-1)/2)
    // Step 1 + Step 3 each scan ~N^2 pairs.
    const auto n2 = static_cast<std::uint64_t>(d.support()) *
                    d.support();
    EXPECT_GE(stats.pairOperations, n2);
    EXPECT_LE(stats.pairOperations, 2 * n2 + d.support());
    ASSERT_EQ(stats.weights.size(), 4u);
    EXPECT_GT(stats.aggregateChs[0], 0.0);
}

TEST(Hammer, RadiusZeroSquaresProbabilities)
{
    // With no neighbourhood, score(x) == P(x), so the multiplicative
    // update is a pure P^2 renormalisation.
    Distribution d(4);
    d.set(0b0000, 0.5);
    d.set(0b1111, 0.3);
    d.set(0b1010, 0.2);
    HammerConfig config;
    config.maxDistance = 0;
    const Distribution out = reconstruct(d, config);
    const double z = 0.25 + 0.09 + 0.04;
    EXPECT_NEAR(out.probability(0b0000), 0.25 / z, 1e-12);
    EXPECT_NEAR(out.probability(0b1111), 0.09 / z, 1e-12);
    EXPECT_NEAR(out.probability(0b1010), 0.04 / z, 1e-12);
}

TEST(Hammer, NeighborhoodScoreMatchesReconstructInternals)
{
    const Distribution d = figure6Distribution();
    EXPECT_NEAR(neighborhoodScore(d, 0b111),
                0.30 + (5.0 / 12.0) * 0.15, 1e-12);
    EXPECT_NEAR(neighborhoodScore(d, 0b001), 0.05, 1e-12);
}

TEST(Hammer, FilterOffLetsLowProbOutcomesBorrow)
{
    const Distribution d = figure6Distribution();
    HammerConfig no_filter;
    no_filter.filterLowerProbability = false;
    // Outcome 001 sits next to the rich 101 neighbourhood; without
    // the filter it gains score it cannot get with the filter on.
    EXPECT_GT(neighborhoodScore(d, 0b001, no_filter),
              neighborhoodScore(d, 0b001, {}));
}

TEST(Hammer, UniformWeightAblationDiffersFromPaperScheme)
{
    const Distribution d = bvLikeDistribution(8, 0b11111111);
    HammerConfig uniform;
    uniform.weightScheme = WeightScheme::Uniform;
    const Distribution paper_out = reconstruct(d);
    const Distribution uniform_out = reconstruct(d, uniform);
    double max_diff = 0.0;
    for (const auto &e : paper_out.entries()) {
        max_diff = std::max(max_diff,
                            std::abs(e.probability -
                                     uniform_out.probability(e.outcome)));
    }
    EXPECT_GT(max_diff, 1e-6);
}

TEST(Hammer, InverseBinomialWeightsAreValid)
{
    const Distribution d = bvLikeDistribution(8, 0b11111111);
    HammerConfig config;
    config.weightScheme = WeightScheme::InverseBinomial;
    const Distribution out = reconstruct(d, config);
    EXPECT_TRUE(out.normalized(1e-9));
}

TEST(Hammer, AdditiveCombineKeepsScoresAsProbabilities)
{
    const Distribution d = figure6Distribution();
    HammerConfig additive;
    additive.scoreCombine = ScoreCombine::Additive;
    const Distribution out = reconstruct(d, additive);
    EXPECT_TRUE(out.normalized(1e-9));
    // Additive keeps 101 on top but by a smaller multiplicative
    // factor than the baseline squaring does.
    EXPECT_GT(out.probability(0b101), out.probability(0b111));
}

TEST(Hammer, MaxDistanceBeyondWidthRejected)
{
    const Distribution d = figure6Distribution();
    HammerConfig config;
    config.maxDistance = 4;
    EXPECT_THROW(reconstruct(d, config), std::invalid_argument);
}

TEST(Hammer, IterativeOnePassEqualsReconstruct)
{
    const Distribution d = bvLikeDistribution(8, 0b11111111);
    const Distribution once = reconstruct(d);
    const Distribution iter = reconstructIterative(d, 1);
    for (const auto &e : once.entries())
        EXPECT_NEAR(e.probability, iter.probability(e.outcome), 1e-12);
}

TEST(Hammer, IterativeSharpensFurther)
{
    const Bits key = 0b1111111111;
    const Distribution d = bvLikeDistribution(10, key);
    const double pst1 =
        hammer::metrics::pst(reconstructIterative(d, 1), {key});
    const double pst3 =
        hammer::metrics::pst(reconstructIterative(d, 3), {key});
    EXPECT_GT(pst3, pst1)
        << "extra passes should keep concentrating the cluster";
}

TEST(Hammer, IterativeRejectsZeroPasses)
{
    const Distribution d = figure6Distribution();
    EXPECT_THROW(reconstructIterative(d, 0), std::invalid_argument);
}

TEST(HammerFast, MatchesReferenceImplementationExactly)
{
    for (int n : {6, 8, 10}) {
        const Bits key = (Bits{1} << n) - 1;
        const Distribution d = bvLikeDistribution(n, key, 0.06, 0.08);
        const Distribution slow = reconstruct(d);
        const Distribution fast = reconstructFast(d);
        ASSERT_EQ(slow.support(), fast.support()) << "n=" << n;
        for (const auto &e : slow.entries()) {
            EXPECT_NEAR(e.probability, fast.probability(e.outcome),
                        1e-12)
                << "n=" << n << " outcome " << e.outcome;
        }
    }
}

TEST(HammerFast, MatchesReferenceUnderAllConfigs)
{
    const Distribution d = bvLikeDistribution(8, 0b11111111);
    for (int radius : {-1, 0, 1, 3}) {
        for (bool filter : {true, false}) {
            for (auto scheme : {WeightScheme::InverseChs,
                                WeightScheme::Uniform,
                                WeightScheme::InverseBinomial}) {
                HammerConfig config;
                config.maxDistance = radius;
                config.filterLowerProbability = filter;
                config.weightScheme = scheme;
                const Distribution slow = reconstruct(d, config);
                const Distribution fast = reconstructFast(d, config);
                for (const auto &e : slow.entries()) {
                    ASSERT_NEAR(e.probability,
                                fast.probability(e.outcome), 1e-12)
                        << "radius " << radius << " filter " << filter;
                }
            }
        }
    }
}

TEST(HammerFast, PrunesPairOperationsOnClusteredData)
{
    // A clustered histogram has popcounts concentrated near n, so
    // bucketing must skip a sizeable share of the N^2 scans.
    const Distribution d = bvLikeDistribution(12, (Bits{1} << 12) - 1,
                                              0.03, 0.05);
    HammerStats slow_stats, fast_stats;
    reconstruct(d, {}, &slow_stats);
    reconstructFast(d, {}, &fast_stats);
    EXPECT_LT(fast_stats.pairOperations, slow_stats.pairOperations);
}

TEST(HammerFast, SingleOutcomeFixedPoint)
{
    Distribution d(6);
    d.set(0b101010, 1.0);
    const Distribution out = reconstructFast(d);
    EXPECT_NEAR(out.probability(0b101010), 1.0, 1e-12);
}

TEST(HammerFast, RejectsBadInput)
{
    Distribution d(4);
    EXPECT_THROW(reconstructFast(d), std::invalid_argument);
    d.set(0, 0.5);
    EXPECT_THROW(reconstructFast(d), std::invalid_argument);
}

TEST(Hammer, ParallelReconstructBitIdenticalAcrossThreadCounts)
{
    // The data-layer contract: the support is partitioned in
    // fixed-size chunks whose CHS partials reduce in a fixed tree
    // order, so any worker count — including non-power-of-two —
    // produces byte-identical output.
    const Bits key = (Bits{1} << 12) - 1;
    const Distribution d = bvLikeDistribution(12, key, 0.05, 0.08);
    ASSERT_GT(d.support(), 256u) << "need several scan chunks";

    HammerConfig serial;
    serial.threads = 1;
    HammerStats serial_stats;
    const Distribution reference = reconstruct(d, serial, &serial_stats);

    for (int threads : {2, 3, 4}) {
        HammerConfig config;
        config.threads = threads;
        HammerStats stats;
        const Distribution out = reconstruct(d, config, &stats);
        ASSERT_EQ(out.support(), reference.support())
            << threads << " threads";
        for (std::size_t i = 0; i < out.support(); ++i) {
            EXPECT_EQ(out.entries()[i].outcome,
                      reference.entries()[i].outcome);
            EXPECT_DOUBLE_EQ(out.entries()[i].probability,
                             reference.entries()[i].probability)
                << threads << " threads, entry " << i;
        }
        EXPECT_EQ(stats.pairOperations, serial_stats.pairOperations);
        for (std::size_t bin = 0; bin < stats.aggregateChs.size();
             ++bin) {
            EXPECT_DOUBLE_EQ(stats.aggregateChs[bin],
                             serial_stats.aggregateChs[bin])
                << threads << " threads, bin " << bin;
        }
    }
}

TEST(HammerFast, ParallelReconstructFastBitIdenticalAcrossThreadCounts)
{
    const Bits key = (Bits{1} << 12) - 1;
    const Distribution d = bvLikeDistribution(12, key, 0.05, 0.08);

    HammerConfig serial;
    serial.threads = 1;
    const Distribution reference = reconstructFast(d, serial);

    for (int threads : {2, 4}) {
        HammerConfig config;
        config.threads = threads;
        const Distribution out = reconstructFast(d, config);
        ASSERT_EQ(out.support(), reference.support());
        for (std::size_t i = 0; i < out.support(); ++i) {
            EXPECT_DOUBLE_EQ(out.entries()[i].probability,
                             reference.entries()[i].probability)
                << threads << " threads, entry " << i;
        }
    }
}

TEST(Hammer, BitPermutationEquivariance)
{
    // Relabelling qubits commutes with reconstruction: HAMMER only
    // sees Hamming geometry, which is permutation invariant.
    const Distribution d = figure6Distribution();
    auto permute = [](Bits x) {
        // Rotate the 3 bits left by one.
        return ((x << 1) | (x >> 2)) & 0b111;
    };
    Distribution pd(3);
    for (const auto &e : d.entries())
        pd.set(permute(e.outcome), e.probability);

    const Distribution out = reconstruct(d);
    const Distribution pout = reconstruct(pd);
    for (const auto &e : out.entries()) {
        EXPECT_NEAR(e.probability, pout.probability(permute(e.outcome)),
                    1e-12);
    }
}

TEST(Hammer, ComplementEquivariance)
{
    // Flipping every bit of every outcome is a Hamming isometry.
    const int n = 6;
    const Bits mask = (Bits{1} << n) - 1;
    const Distribution d = bvLikeDistribution(n, mask, 0.07, 0.06);
    Distribution cd(n);
    for (const auto &e : d.entries())
        cd.set(e.outcome ^ mask, e.probability);

    const Distribution out = reconstruct(d);
    const Distribution cout_ = reconstruct(cd);
    for (const auto &e : out.entries()) {
        EXPECT_NEAR(e.probability, cout_.probability(e.outcome ^ mask),
                    1e-12);
    }
}

class HammerWidthProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(HammerWidthProperty, PstNeverDegradesOnClusteredNoise)
{
    // For any width, a distribution whose errors are strictly
    // clustered around the key must see PST improve.
    const int n = GetParam();
    const Bits key = (Bits{1} << n) - 1;
    Distribution d(n);
    d.set(key, 0.2);
    for (int q = 0; q < n; ++q)
        d.set(key ^ (Bits{1} << q), 0.5 / n);
    d.set(0, 0.3); // unstructured singleton
    d.normalize();

    const Distribution out = reconstruct(d);
    EXPECT_GE(hammer::metrics::pst(out, {key}),
              hammer::metrics::pst(d, {key}))
        << "width " << n;
}

INSTANTIATE_TEST_SUITE_P(Widths, HammerWidthProperty,
                         ::testing::Values(4, 6, 8, 10, 12, 14, 16));

} // namespace
