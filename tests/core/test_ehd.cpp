/**
 * @file
 * Unit tests for the Expected Hamming Distance metric.
 */

#include <gtest/gtest.h>

#include "core/ehd.hpp"

namespace {

using hammer::common::Bits;
using hammer::core::Distribution;
using namespace hammer::core;

TEST(Ehd, ErrorFreeDistributionHasZeroEhd)
{
    Distribution d(4);
    d.set(0b1111, 1.0);
    EXPECT_DOUBLE_EQ(expectedHammingDistance(d, {0b1111}), 0.0);
    EXPECT_DOUBLE_EQ(expectedHammingDistanceIncorrect(d, {0b1111}), 0.0);
}

TEST(Ehd, SingleErrorContributesWeightedDistance)
{
    Distribution d(4);
    d.set(0b1111, 0.8);
    d.set(0b1110, 0.2); // distance 1
    EXPECT_NEAR(expectedHammingDistance(d, {0b1111}), 0.2, 1e-12);
    EXPECT_NEAR(expectedHammingDistanceIncorrect(d, {0b1111}), 1.0,
                1e-12);
}

TEST(Ehd, UniformDistributionApproachesHalfN)
{
    const int n = 8;
    std::vector<double> dense(std::size_t{1} << n,
                              1.0 / (std::size_t{1} << n));
    const Distribution d = Distribution::fromDense(n, dense);
    EXPECT_NEAR(expectedHammingDistance(d, {0}), n / 2.0, 1e-9);
}

TEST(Ehd, MultipleCorrectOutcomesUseMinDistance)
{
    Distribution d(4);
    d.set(0b0000, 0.4);
    d.set(0b1111, 0.4);
    d.set(0b1110, 0.2); // distance 1 to 1111, 3 to 0000
    EXPECT_NEAR(expectedHammingDistance(d, {0b0000, 0b1111}), 0.2,
                1e-12);
}

TEST(Ehd, IncorrectOnlyVariantRenormalises)
{
    Distribution d(4);
    d.set(0b1111, 0.5);
    d.set(0b1110, 0.25); // d = 1
    d.set(0b1100, 0.25); // d = 2
    // Weighted average over incorrect mass: (0.25*1 + 0.25*2)/0.5.
    EXPECT_NEAR(expectedHammingDistanceIncorrect(d, {0b1111}), 1.5,
                1e-12);
    // Unrenormalised version scales by the incorrect mass.
    EXPECT_NEAR(expectedHammingDistance(d, {0b1111}), 0.75, 1e-12);
}

TEST(Ehd, ClusteredErrorsBeatUniformModel)
{
    // Errors all within distance 1 -> EHD far below n/2.
    const int n = 10;
    Distribution d(n);
    d.set((Bits{1} << n) - 1, 0.4);
    for (int q = 0; q < n; ++q)
        d.set(((Bits{1} << n) - 1) ^ (Bits{1} << q), 0.06);
    const double ehd = expectedHammingDistance(d, {(Bits{1} << n) - 1});
    EXPECT_LT(ehd, uniformModelEhd(n) / 2.0);
}

TEST(Ehd, UniformModelEhdIsHalfN)
{
    EXPECT_DOUBLE_EQ(uniformModelEhd(8), 4.0);
    EXPECT_DOUBLE_EQ(uniformModelEhd(15), 7.5);
}

TEST(Ehd, RejectsEmptyReferences)
{
    Distribution d(3);
    d.set(0, 1.0);
    EXPECT_THROW(expectedHammingDistance(d, {}), std::invalid_argument);
}

TEST(Ehd, BoundedByWidth)
{
    Distribution d(5);
    d.set(0b00000, 0.5);
    d.set(0b11111, 0.5);
    const double ehd = expectedHammingDistance(d, {0b00000});
    EXPECT_GE(ehd, 0.0);
    EXPECT_LE(ehd, 5.0);
}

} // namespace
