/**
 * @file
 * Unit tests for the sparse Distribution container.
 */

#include <gtest/gtest.h>

#include "core/distribution.hpp"

namespace {

using hammer::common::Bits;
using hammer::core::Distribution;
using hammer::core::Entry;

TEST(Distribution, FromCountsNormalises)
{
    const Distribution d = Distribution::fromCounts(
        3, {{0b111, 600}, {0b011, 300}, {0b000, 100}});
    EXPECT_EQ(d.support(), 3u);
    EXPECT_TRUE(d.normalized());
    EXPECT_NEAR(d.probability(0b111), 0.6, 1e-12);
    EXPECT_NEAR(d.probability(0b011), 0.3, 1e-12);
    EXPECT_NEAR(d.probability(0b000), 0.1, 1e-12);
}

TEST(Distribution, FromCountsSkipsZeroCounts)
{
    const Distribution d = Distribution::fromCounts(
        2, {{0b00, 10}, {0b01, 0}});
    EXPECT_EQ(d.support(), 1u);
}

TEST(Distribution, FromCountsRejectsEmpty)
{
    EXPECT_THROW(Distribution::fromCounts(2, {}), std::invalid_argument);
    EXPECT_THROW(Distribution::fromCounts(2, {{0b00, 0}}),
                 std::invalid_argument);
}

TEST(Distribution, FromShotsCountsOccurrences)
{
    const Distribution d = Distribution::fromShots(
        2, {0b00, 0b00, 0b01, 0b11});
    EXPECT_NEAR(d.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(d.probability(0b01), 0.25, 1e-12);
    EXPECT_NEAR(d.probability(0b11), 0.25, 1e-12);
}

TEST(Distribution, FromDenseDropsTinyEntries)
{
    std::vector<double> probs(4, 0.0);
    probs[0] = 0.7;
    probs[3] = 0.3;
    probs[1] = 1e-15;
    const Distribution d = Distribution::fromDense(2, probs);
    EXPECT_EQ(d.support(), 2u);
    EXPECT_NEAR(d.probability(0), 0.7, 1e-12);
}

TEST(Distribution, FromDenseValidatesLength)
{
    EXPECT_THROW(Distribution::fromDense(2, {0.5, 0.5}),
                 std::invalid_argument);
}

TEST(Distribution, ProbabilityOfAbsentOutcomeIsZero)
{
    Distribution d(4);
    d.set(0b1010, 1.0);
    EXPECT_DOUBLE_EQ(d.probability(0b0101), 0.0);
}

TEST(Distribution, SetOverwritesAddAccumulates)
{
    Distribution d(3);
    d.set(0b101, 0.4);
    d.set(0b101, 0.6);
    EXPECT_DOUBLE_EQ(d.probability(0b101), 0.6);
    d.add(0b101, 0.2);
    EXPECT_NEAR(d.probability(0b101), 0.8, 1e-12);
    d.add(0b010, 0.2);
    EXPECT_NEAR(d.probability(0b010), 0.2, 1e-12);
}

TEST(Distribution, SetRejectsNegative)
{
    Distribution d(2);
    EXPECT_THROW(d.set(0, -0.1), std::invalid_argument);
}

TEST(Distribution, EntriesStaySortedByOutcome)
{
    Distribution d(4);
    d.set(0b1000, 0.1);
    d.set(0b0001, 0.2);
    d.set(0b0100, 0.3);
    const auto &entries = d.entries();
    for (std::size_t i = 1; i < entries.size(); ++i)
        EXPECT_LT(entries[i - 1].outcome, entries[i].outcome);
}

TEST(Distribution, NormalizeScalesToUnitMass)
{
    Distribution d(2);
    d.set(0b00, 2.0);
    d.set(0b11, 6.0);
    EXPECT_FALSE(d.normalized());
    d.normalize();
    EXPECT_TRUE(d.normalized());
    EXPECT_NEAR(d.probability(0b11), 0.75, 1e-12);
}

TEST(Distribution, NormalizeRejectsZeroMass)
{
    Distribution d(2);
    EXPECT_THROW(d.normalize(), std::invalid_argument);
}

TEST(Distribution, TopOutcomeFindsMode)
{
    Distribution d(3);
    d.set(0b001, 0.2);
    d.set(0b110, 0.5);
    d.set(0b111, 0.3);
    EXPECT_EQ(d.topOutcome().outcome, Bits{0b110});
    EXPECT_DOUBLE_EQ(d.topOutcome().probability, 0.5);
}

TEST(Distribution, SortedByProbabilityDescending)
{
    Distribution d(3);
    d.set(0b001, 0.2);
    d.set(0b110, 0.5);
    d.set(0b111, 0.3);
    const auto sorted = d.sortedByProbability();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].outcome, Bits{0b110});
    EXPECT_EQ(sorted[1].outcome, Bits{0b111});
    EXPECT_EQ(sorted[2].outcome, Bits{0b001});
}

TEST(Distribution, SortedByProbabilityBreaksTiesByOutcome)
{
    Distribution d(2);
    d.set(0b10, 0.5);
    d.set(0b01, 0.5);
    const auto sorted = d.sortedByProbability();
    EXPECT_EQ(sorted[0].outcome, Bits{0b01});
}

TEST(Distribution, ToStringShowsTopEntries)
{
    Distribution d(4);
    d.set(0b1111, 0.9);
    d.set(0b0000, 0.1);
    const std::string text = d.toString();
    EXPECT_NE(text.find("1111"), std::string::npos);
    EXPECT_LT(text.find("1111"), text.find("0000"));
}

TEST(Distribution, RejectsBadWidth)
{
    EXPECT_THROW(Distribution(0), std::invalid_argument);
    EXPECT_THROW(Distribution(65), std::invalid_argument);
}

TEST(CountAccumulator, AccumulatesAndNormalises)
{
    hammer::core::CountAccumulator acc;
    EXPECT_TRUE(acc.empty());
    acc.add(0b01);
    acc.add(0b01, 2);
    acc.add(0b10, 7);
    acc.add(0b11, 0); // zero counts are ignored
    EXPECT_EQ(acc.totalShots(), 10u);

    const Distribution d = acc.toDistribution(2);
    EXPECT_EQ(d.support(), 2u);
    EXPECT_NEAR(d.probability(0b01), 0.3, 1e-12);
    EXPECT_NEAR(d.probability(0b10), 0.7, 1e-12);
}

TEST(CountAccumulator, MergeSumsOverlappingOutcomes)
{
    hammer::core::CountAccumulator a, b;
    a.add(0b00, 4);
    a.add(0b01, 1);
    b.add(0b01, 3);
    b.add(0b11, 2);
    a.merge(b);
    EXPECT_EQ(a.totalShots(), 10u);
    EXPECT_EQ(a.counts().at(0b00), 4u);
    EXPECT_EQ(a.counts().at(0b01), 4u);
    EXPECT_EQ(a.counts().at(0b11), 2u);
}

TEST(CountAccumulator, TreeReduceMatchesLinearMergeForAnyPartition)
{
    // The property the parallel engine relies on: however shots are
    // partitioned across workers, the reduced histogram is
    // identical.
    for (std::size_t parts : {1u, 2u, 3u, 5u, 8u, 13u}) {
        std::vector<hammer::core::CountAccumulator> partials(parts);
        for (std::uint64_t shot = 0; shot < 1000; ++shot)
            partials[shot % parts].add(shot % 7);

        hammer::core::CountAccumulator reduced =
            hammer::core::CountAccumulator::treeReduce(partials);
        EXPECT_EQ(reduced.totalShots(), 1000u) << parts << " parts";
        for (std::uint64_t outcome = 0; outcome < 7; ++outcome) {
            EXPECT_EQ(reduced.counts().at(outcome),
                      outcome < 6 ? 143u : 142u)
                << parts << " parts, outcome " << outcome;
        }
    }
}

TEST(CountAccumulator, TreeReduceRejectsEmptyInput)
{
    std::vector<hammer::core::CountAccumulator> none;
    EXPECT_THROW(hammer::core::CountAccumulator::treeReduce(none),
                 std::invalid_argument);
}

} // namespace
