/**
 * @file
 * Unit tests for the sparse Distribution container and the flat
 * CountAccumulator, including the property test pinning the flat
 * storage to a reference std::map histogram on random shot streams.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "common/rng.hpp"
#include "core/distribution.hpp"

namespace {

using hammer::common::Bits;
using hammer::core::CountAccumulator;
using hammer::core::Distribution;
using hammer::core::Entry;

TEST(Distribution, FromCountsNormalises)
{
    const Distribution d = Distribution::fromCounts(
        3, {{0b111, 600}, {0b011, 300}, {0b000, 100}});
    EXPECT_EQ(d.support(), 3u);
    EXPECT_TRUE(d.normalized());
    EXPECT_NEAR(d.probability(0b111), 0.6, 1e-12);
    EXPECT_NEAR(d.probability(0b011), 0.3, 1e-12);
    EXPECT_NEAR(d.probability(0b000), 0.1, 1e-12);
}

TEST(Distribution, FromCountsSkipsZeroCounts)
{
    const Distribution d = Distribution::fromCounts(
        2, {{0b00, 10}, {0b01, 0}});
    EXPECT_EQ(d.support(), 1u);
}

TEST(Distribution, FromCountsRejectsEmpty)
{
    EXPECT_THROW(Distribution::fromCounts(2, {}), std::invalid_argument);
    EXPECT_THROW(Distribution::fromCounts(2, {{0b00, 0}}),
                 std::invalid_argument);
}

TEST(Distribution, FromShotsCountsOccurrences)
{
    const Distribution d = Distribution::fromShots(
        2, {0b00, 0b00, 0b01, 0b11});
    EXPECT_NEAR(d.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(d.probability(0b01), 0.25, 1e-12);
    EXPECT_NEAR(d.probability(0b11), 0.25, 1e-12);
}

TEST(Distribution, FromDenseDropsTinyEntries)
{
    std::vector<double> probs(4, 0.0);
    probs[0] = 0.7;
    probs[3] = 0.3;
    probs[1] = 1e-15;
    const Distribution d = Distribution::fromDense(2, probs);
    EXPECT_EQ(d.support(), 2u);
    EXPECT_NEAR(d.probability(0), 0.7, 1e-12);
}

TEST(Distribution, FromDenseValidatesLength)
{
    EXPECT_THROW(Distribution::fromDense(2, {0.5, 0.5}),
                 std::invalid_argument);
}

TEST(Distribution, ProbabilityOfAbsentOutcomeIsZero)
{
    Distribution d(4);
    d.set(0b1010, 1.0);
    EXPECT_DOUBLE_EQ(d.probability(0b0101), 0.0);
}

TEST(Distribution, SetOverwritesAddAccumulates)
{
    Distribution d(3);
    d.set(0b101, 0.4);
    d.set(0b101, 0.6);
    EXPECT_DOUBLE_EQ(d.probability(0b101), 0.6);
    d.add(0b101, 0.2);
    EXPECT_NEAR(d.probability(0b101), 0.8, 1e-12);
    d.add(0b010, 0.2);
    EXPECT_NEAR(d.probability(0b010), 0.2, 1e-12);
}

TEST(Distribution, SetRejectsNegative)
{
    Distribution d(2);
    EXPECT_THROW(d.set(0, -0.1), std::invalid_argument);
}

TEST(Distribution, EntriesStaySortedByOutcome)
{
    Distribution d(4);
    d.set(0b1000, 0.1);
    d.set(0b0001, 0.2);
    d.set(0b0100, 0.3);
    const auto &entries = d.entries();
    for (std::size_t i = 1; i < entries.size(); ++i)
        EXPECT_LT(entries[i - 1].outcome, entries[i].outcome);
}

TEST(Distribution, NormalizeScalesToUnitMass)
{
    Distribution d(2);
    d.set(0b00, 2.0);
    d.set(0b11, 6.0);
    EXPECT_FALSE(d.normalized());
    d.normalize();
    EXPECT_TRUE(d.normalized());
    EXPECT_NEAR(d.probability(0b11), 0.75, 1e-12);
}

TEST(Distribution, NormalizeRejectsZeroMass)
{
    Distribution d(2);
    EXPECT_THROW(d.normalize(), std::invalid_argument);
}

TEST(Distribution, TopOutcomeFindsMode)
{
    Distribution d(3);
    d.set(0b001, 0.2);
    d.set(0b110, 0.5);
    d.set(0b111, 0.3);
    EXPECT_EQ(d.topOutcome().outcome, Bits{0b110});
    EXPECT_DOUBLE_EQ(d.topOutcome().probability, 0.5);
}

TEST(Distribution, SortedByProbabilityDescending)
{
    Distribution d(3);
    d.set(0b001, 0.2);
    d.set(0b110, 0.5);
    d.set(0b111, 0.3);
    const auto sorted = d.sortedByProbability();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].outcome, Bits{0b110});
    EXPECT_EQ(sorted[1].outcome, Bits{0b111});
    EXPECT_EQ(sorted[2].outcome, Bits{0b001});
}

TEST(Distribution, SortedByProbabilityBreaksTiesByOutcome)
{
    Distribution d(2);
    d.set(0b10, 0.5);
    d.set(0b01, 0.5);
    const auto sorted = d.sortedByProbability();
    EXPECT_EQ(sorted[0].outcome, Bits{0b01});
}

TEST(Distribution, ToStringShowsTopEntries)
{
    Distribution d(4);
    d.set(0b1111, 0.9);
    d.set(0b0000, 0.1);
    const std::string text = d.toString();
    EXPECT_NE(text.find("1111"), std::string::npos);
    EXPECT_LT(text.find("1111"), text.find("0000"));
}

TEST(Distribution, RejectsBadWidth)
{
    EXPECT_THROW(Distribution(0), std::invalid_argument);
    EXPECT_THROW(Distribution(65), std::invalid_argument);
}

TEST(Distribution, FromSortedAdoptsEntries)
{
    const Distribution d = Distribution::fromSorted(
        3, {{0b001, 0.25}, {0b100, 0.75}});
    EXPECT_EQ(d.support(), 2u);
    EXPECT_DOUBLE_EQ(d.probability(0b001), 0.25);
    EXPECT_DOUBLE_EQ(d.probability(0b100), 0.75);
}

TEST(Distribution, FromSortedRejectsUnsortedOrNegative)
{
    EXPECT_THROW(
        Distribution::fromSorted(3, {{0b100, 0.5}, {0b001, 0.5}}),
        std::invalid_argument);
    EXPECT_THROW(
        Distribution::fromSorted(3, {{0b001, 0.5}, {0b001, 0.5}}),
        std::invalid_argument);
    EXPECT_THROW(Distribution::fromSorted(3, {{0b001, -0.5}}),
                 std::invalid_argument);
}

TEST(Distribution, CollapseEntriesSumsDuplicatesInAppendOrder)
{
    const auto collapsed = hammer::core::collapseEntries(
        {{0b10, 0.1}, {0b01, 0.2}, {0b10, 0.3}, {0b01, 0.4}});
    ASSERT_EQ(collapsed.size(), 2u);
    EXPECT_EQ(collapsed[0].outcome, Bits{0b01});
    EXPECT_DOUBLE_EQ(collapsed[0].probability, 0.2 + 0.4);
    EXPECT_EQ(collapsed[1].outcome, Bits{0b10});
    EXPECT_DOUBLE_EQ(collapsed[1].probability, 0.1 + 0.3);
}

TEST(CountAccumulator, AccumulatesAndNormalises)
{
    CountAccumulator acc;
    EXPECT_TRUE(acc.empty());
    acc.add(0b01);
    acc.add(0b01, 2);
    acc.add(0b10, 7);
    acc.add(0b11, 0); // zero counts are ignored
    EXPECT_EQ(acc.totalShots(), 10u);

    const Distribution d = acc.toDistribution(2);
    EXPECT_EQ(d.support(), 2u);
    EXPECT_NEAR(d.probability(0b01), 0.3, 1e-12);
    EXPECT_NEAR(d.probability(0b10), 0.7, 1e-12);
}

TEST(CountAccumulator, MergeSumsOverlappingOutcomes)
{
    CountAccumulator a, b;
    a.add(0b00, 4);
    a.add(0b01, 1);
    b.add(0b01, 3);
    b.add(0b11, 2);
    a.merge(b);
    EXPECT_EQ(a.totalShots(), 10u);
    EXPECT_EQ(a.count(0b00), 4u);
    EXPECT_EQ(a.count(0b01), 4u);
    EXPECT_EQ(a.count(0b11), 2u);
    EXPECT_EQ(a.count(0b10), 0u);
}

TEST(CountAccumulator, CountsAreSortedByOutcome)
{
    CountAccumulator acc;
    acc.add(0b11, 1);
    acc.add(0b00, 2);
    acc.add(0b10, 3);
    acc.add(0b00, 4);
    const auto &counts = acc.counts();
    ASSERT_EQ(counts.size(), 3u);
    for (std::size_t i = 1; i < counts.size(); ++i)
        EXPECT_LT(counts[i - 1].outcome, counts[i].outcome);
    EXPECT_EQ(counts[0].count, 6u);
}

TEST(CountAccumulator, FlatStorageMatchesMapReferenceOnRandomStreams)
{
    // Property test pinning the flat sorted-vector accumulator to
    // the node-based reference it replaced: for arbitrary shot
    // streams (heavy duplication, interleaved merges, lazy-collapse
    // boundaries) the histogram must be identical entry for entry.
    hammer::common::Rng rng(0xACC);
    for (int round = 0; round < 8; ++round) {
        const int width = 4 + 2 * round;
        const std::uint64_t universe = Bits{1} << width;
        const std::size_t shots = 50000;

        std::map<Bits, std::uint64_t> reference;
        CountAccumulator flat;
        for (std::size_t s = 0; s < shots; ++s) {
            // Skewed stream: half the mass in a narrow cluster.
            const Bits outcome = rng.bernoulli(0.5)
                ? rng.uniformInt(universe)
                : rng.uniformInt(std::min<std::uint64_t>(universe, 16));
            ++reference[outcome];
            flat.add(outcome);
        }

        EXPECT_EQ(flat.totalShots(), shots);
        const auto &counts = flat.counts();
        ASSERT_EQ(counts.size(), reference.size()) << "round " << round;
        std::size_t i = 0;
        for (const auto &[outcome, count] : reference) {
            EXPECT_EQ(counts[i].outcome, outcome) << "round " << round;
            EXPECT_EQ(counts[i].count, count) << "round " << round;
            ++i;
        }

        // And the normalised view agrees with the map-built one.
        std::vector<std::pair<Bits, std::uint64_t>> pairs(
            reference.begin(), reference.end());
        const Distribution from_map =
            Distribution::fromCounts(width, pairs);
        const Distribution from_flat = flat.toDistribution(width);
        ASSERT_EQ(from_map.support(), from_flat.support());
        for (const auto &e : from_map.entries())
            EXPECT_DOUBLE_EQ(e.probability,
                             from_flat.probability(e.outcome));
    }
}

TEST(CountAccumulator, TreeReduceMatchesLinearMergeForAnyPartition)
{
    // The property the parallel engine relies on: however shots are
    // partitioned across workers — including non-power-of-two worker
    // counts, where the reduction tree is ragged — the reduced
    // histogram is identical.
    for (std::size_t parts : {1u, 2u, 3u, 5u, 6u, 7u, 8u, 11u, 13u}) {
        std::vector<CountAccumulator> partials(parts);
        for (std::uint64_t shot = 0; shot < 1000; ++shot)
            partials[shot % parts].add(shot % 7);

        CountAccumulator reduced =
            CountAccumulator::treeReduce(partials);
        EXPECT_EQ(reduced.totalShots(), 1000u) << parts << " parts";
        for (std::uint64_t outcome = 0; outcome < 7; ++outcome) {
            EXPECT_EQ(reduced.count(outcome),
                      outcome < 6 ? 143u : 142u)
                << parts << " parts, outcome " << outcome;
        }
    }
}

TEST(CountAccumulator, TreeReduceRejectsEmptyInput)
{
    std::vector<CountAccumulator> none;
    EXPECT_THROW(CountAccumulator::treeReduce(none),
                 std::invalid_argument);
}

} // namespace
