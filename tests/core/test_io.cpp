/**
 * @file
 * Unit tests for histogram CSV serialisation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/io.hpp"

namespace {

using hammer::core::Distribution;
using hammer::core::readDistributionCsv;
using hammer::core::writeDistributionCsv;

TEST(Io, ReadsCountsAndNormalises)
{
    const auto dist = readDistributionCsv(
        "111,600\n011,300\n000,100\n");
    EXPECT_EQ(dist.numBits(), 3);
    EXPECT_NEAR(dist.probability(0b111), 0.6, 1e-12);
    EXPECT_NEAR(dist.probability(0b011), 0.3, 1e-12);
    EXPECT_NEAR(dist.probability(0b000), 0.1, 1e-12);
}

TEST(Io, ReadsProbabilities)
{
    const auto dist = readDistributionCsv("10,0.25\n01,0.75\n");
    EXPECT_NEAR(dist.probability(0b10), 0.25, 1e-12);
    EXPECT_NEAR(dist.probability(0b01), 0.75, 1e-12);
}

TEST(Io, SkipsCommentsAndBlankLines)
{
    const auto dist = readDistributionCsv(
        "# device: machineA\n\n11,1\n# trailer\n00,1\n");
    EXPECT_EQ(dist.support(), 2u);
}

TEST(Io, HandlesCrlfLineEndings)
{
    const auto dist = readDistributionCsv("11,2\r\n00,2\r\n");
    EXPECT_NEAR(dist.probability(0b11), 0.5, 1e-12);
}

TEST(Io, AccumulatesDuplicateOutcomes)
{
    const auto dist = readDistributionCsv("1,1\n1,1\n0,2\n");
    EXPECT_NEAR(dist.probability(1), 0.5, 1e-12);
}

TEST(Io, RejectsMalformedInput)
{
    EXPECT_THROW(readDistributionCsv(""), std::invalid_argument);
    EXPECT_THROW(readDistributionCsv("11\n"), std::invalid_argument);
    EXPECT_THROW(readDistributionCsv("1x,3\n"), std::invalid_argument);
    EXPECT_THROW(readDistributionCsv("11,abc\n"),
                 std::invalid_argument);
    EXPECT_THROW(readDistributionCsv("11,3junk\n"),
                 std::invalid_argument);
    EXPECT_THROW(readDistributionCsv("11,-1\n"),
                 std::invalid_argument);
    EXPECT_THROW(readDistributionCsv("11,1\n011,1\n"),
                 std::invalid_argument)
        << "inconsistent widths must be rejected";
}

TEST(Io, WriteSortsByProbabilityDescending)
{
    Distribution dist(3);
    dist.set(0b001, 0.2);
    dist.set(0b110, 0.5);
    dist.set(0b111, 0.3);
    std::ostringstream out;
    writeDistributionCsv(out, dist, 2);
    EXPECT_EQ(out.str(), "110,0.50\n111,0.30\n001,0.20\n");
}

TEST(Io, RoundTripPreservesDistribution)
{
    Distribution dist(5);
    dist.set(0b10101, 0.40625);
    dist.set(0b01010, 0.34375);
    dist.set(0b11111, 0.25);
    std::ostringstream out;
    writeDistributionCsv(out, dist);
    const auto reread = readDistributionCsv(out.str());
    ASSERT_EQ(reread.support(), dist.support());
    for (const auto &e : dist.entries())
        EXPECT_NEAR(reread.probability(e.outcome), e.probability,
                    1e-7);
}

TEST(Io, WriteRejectsBadPrecision)
{
    Distribution dist(2);
    dist.set(0, 1.0);
    std::ostringstream out;
    EXPECT_THROW(writeDistributionCsv(out, dist, 0),
                 std::invalid_argument);
    EXPECT_THROW(writeDistributionCsv(out, dist, 99),
                 std::invalid_argument);
}

} // namespace
