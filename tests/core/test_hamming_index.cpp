/**
 * @file
 * Unit tests for the Hamming-weight index backing HAMMER's pruned
 * neighbour search.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/hamming_index.hpp"

namespace {

using hammer::common::Bits;
using hammer::core::Distribution;
using hammer::core::HammingIndex;

Distribution
exampleDistribution()
{
    Distribution d(4);
    d.set(0b0000, 0.1);
    d.set(0b0001, 0.2);
    d.set(0b0110, 0.3);
    d.set(0b1011, 0.15);
    d.set(0b1111, 0.25);
    return d;
}

TEST(HammingIndex, BandsPartitionTheSupportByPopcount)
{
    const Distribution d = exampleDistribution();
    const HammingIndex index(d);

    EXPECT_EQ(index.size(), d.support());
    EXPECT_EQ(index.numBits(), 4);
    EXPECT_EQ(index.minWeight(), 0);
    EXPECT_EQ(index.maxWeight(), 4);

    std::size_t total = 0;
    for (int w = 0; w <= index.numBits(); ++w) {
        for (const auto j : index.band(w)) {
            EXPECT_EQ(hammer::common::popcount(
                          d.entries()[j].outcome),
                      w);
            ++total;
        }
    }
    EXPECT_EQ(total, d.support());

    ASSERT_EQ(index.band(1).size(), 1u);
    EXPECT_EQ(d.entries()[index.band(1)[0]].outcome, Bits{0b0001});
    EXPECT_TRUE(index.band(-1).empty());
    EXPECT_TRUE(index.band(5).empty());
}

TEST(HammingIndex, WeightOfMatchesPopcount)
{
    const Distribution d = exampleDistribution();
    const HammingIndex index(d);
    for (std::size_t i = 0; i < d.support(); ++i)
        EXPECT_EQ(index.weightOf(i),
                  hammer::common::popcount(d.entries()[i].outcome));
}

TEST(HammingIndex, CandidatesCoverEveryOutcomeWithinTheRadius)
{
    // The popcount bound is the pruning's correctness condition:
    // every entry within Hamming distance d of i must appear among
    // forEachCandidate(i, d), and candidates must arrive in
    // band-major ascending order (the determinism contract).
    hammer::common::Rng rng(0x1D);
    Distribution d(10);
    for (int k = 0; k < 200; ++k)
        d.set(rng.uniformInt(Bits{1} << 10), 1.0);
    d.normalize();
    const HammingIndex index(d);

    for (const std::size_t i : {std::size_t{0}, d.support() / 2,
                                d.support() - 1}) {
        for (const int radius : {0, 2, 4}) {
            std::vector<std::size_t> visited;
            index.forEachCandidate(i, radius, [&](std::size_t j) {
                visited.push_back(j);
            });

            // Band-major visit order: weight ascending, index
            // ascending within a band.
            for (std::size_t v = 1; v < visited.size(); ++v) {
                const int wa = index.weightOf(visited[v - 1]);
                const int wb = index.weightOf(visited[v]);
                EXPECT_TRUE(wa < wb ||
                            (wa == wb &&
                             visited[v - 1] < visited[v]));
            }

            const std::set<std::size_t> candidates(visited.begin(),
                                                   visited.end());
            for (std::size_t j = 0; j < d.support(); ++j) {
                const int dist = hammer::common::hammingDistance(
                    d.entries()[i].outcome, d.entries()[j].outcome);
                if (dist <= radius) {
                    EXPECT_TRUE(candidates.count(j))
                        << "entry " << j << " at distance " << dist
                        << " missed for radius " << radius;
                }
            }
        }
    }
}

TEST(HammingIndex, EmptyDistributionIndexes)
{
    const Distribution d(4);
    const HammingIndex index(d);
    EXPECT_EQ(index.size(), 0u);
    EXPECT_EQ(index.minWeight(), 0);
    EXPECT_EQ(index.maxWeight(), -1);
    for (int w = 0; w <= 4; ++w)
        EXPECT_TRUE(index.band(w).empty());
}

} // namespace
