/**
 * @file
 * Unit tests for the Hamming spectrum and CHS machinery (paper
 * Sections 3.2 and 4.3).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/spectrum.hpp"

namespace {

using hammer::common::Bits;
using hammer::core::Distribution;
using namespace hammer::core;

Distribution
exampleDistribution()
{
    // The worked example of paper Fig. 6(a).
    Distribution d(3);
    d.set(0b111, 0.30);
    d.set(0b101, 0.40);
    d.set(0b110, 0.05);
    d.set(0b011, 0.10);
    d.set(0b010, 0.10);
    d.set(0b001, 0.05);
    return d;
}

TEST(Spectrum, BinsPartitionTheDistribution)
{
    const Distribution d = exampleDistribution();
    const HammingSpectrum s = hammingSpectrum(d, {0b111});
    double total = 0.0;
    int count = 0;
    for (std::size_t bin = 0; bin < s.binTotal.size(); ++bin) {
        total += s.binTotal[bin];
        count += s.binCount[bin];
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_EQ(count, 6);
}

TEST(Spectrum, CorrectOutcomeLandsInBinZero)
{
    const Distribution d = exampleDistribution();
    const HammingSpectrum s = hammingSpectrum(d, {0b111});
    EXPECT_NEAR(s.binTotal[0], 0.30, 1e-12);
    EXPECT_EQ(s.binCount[0], 1);
}

TEST(Spectrum, BinContentsMatchHandCount)
{
    const Distribution d = exampleDistribution();
    const HammingSpectrum s = hammingSpectrum(d, {0b111});
    // Distance 1 from 111: 101, 110, 011 -> 0.40+0.05+0.10.
    EXPECT_NEAR(s.binTotal[1], 0.55, 1e-12);
    EXPECT_EQ(s.binCount[1], 3);
    // Distance 2: 010, 001 -> 0.15.
    EXPECT_NEAR(s.binTotal[2], 0.15, 1e-12);
    EXPECT_EQ(s.binCount[2], 2);
    EXPECT_NEAR(s.binAverage[2], 0.075, 1e-12);
}

TEST(Spectrum, MultipleReferencesUseMinimumDistance)
{
    Distribution d(3);
    d.set(0b000, 0.5);
    d.set(0b110, 0.5);
    // 110 is distance 2 from 000 but distance 1 from 111.
    const HammingSpectrum s = hammingSpectrum(d, {0b000, 0b111});
    EXPECT_NEAR(s.binTotal[0], 0.5, 1e-12);
    EXPECT_NEAR(s.binTotal[1], 0.5, 1e-12);
    EXPECT_NEAR(s.binTotal[2], 0.0, 1e-12);
}

TEST(Spectrum, BinMaxTracksDominantOutcome)
{
    const Distribution d = exampleDistribution();
    const HammingSpectrum s = hammingSpectrum(d, {0b111});
    EXPECT_NEAR(s.binMax[1], 0.40, 1e-12);
}

TEST(Spectrum, RejectsEmptyReferences)
{
    const Distribution d = exampleDistribution();
    EXPECT_THROW(hammingSpectrum(d, {}), std::invalid_argument);
}

TEST(Spectrum, UniformOutcomeProbability)
{
    EXPECT_DOUBLE_EQ(uniformOutcomeProbability(3), 0.125);
    EXPECT_DOUBLE_EQ(uniformOutcomeProbability(10), 1.0 / 1024.0);
}

TEST(Spectrum, ChsOfIsolatedOutcomeIsOnlySelf)
{
    Distribution d(6);
    d.set(0b000000, 0.9);
    d.set(0b111111, 0.1);
    const auto chs = cumulativeHammingStrength(d, 0b000000, 2);
    ASSERT_EQ(chs.size(), 3u);
    EXPECT_NEAR(chs[0], 0.9, 1e-12);
    EXPECT_NEAR(chs[1], 0.0, 1e-12);
    EXPECT_NEAR(chs[2], 0.0, 1e-12);
}

TEST(Spectrum, ChsMatchesHandComputedNeighbourhood)
{
    const Distribution d = exampleDistribution();
    const auto chs = cumulativeHammingStrength(d, 0b111, 3);
    EXPECT_NEAR(chs[0], 0.30, 1e-12);
    EXPECT_NEAR(chs[1], 0.55, 1e-12);
    EXPECT_NEAR(chs[2], 0.15, 1e-12);
    EXPECT_NEAR(chs[3], 0.00, 1e-12);
}

TEST(Spectrum, ChsForOutcomeAbsentFromDistribution)
{
    // CHS is well-defined for any string, observed or not.
    const Distribution d = exampleDistribution();
    const auto chs = cumulativeHammingStrength(d, 0b000, 1);
    EXPECT_NEAR(chs[0], 0.0, 1e-12);
    // Distance 1 from 000: 001, 010, 100 -> 0.05 + 0.10 + 0.
    EXPECT_NEAR(chs[1], 0.15, 1e-12);
}

TEST(Spectrum, AggregateChsEqualsSumOfPerOutcomeChs)
{
    const Distribution d = exampleDistribution();
    const int dmax = 2;
    const auto aggregate = aggregateChs(d, dmax);
    std::vector<double> manual(static_cast<std::size_t>(dmax) + 1, 0.0);
    for (const auto &e : d.entries()) {
        const auto chs = cumulativeHammingStrength(d, e.outcome, dmax);
        for (std::size_t i = 0; i < manual.size(); ++i)
            manual[i] += chs[i];
    }
    for (std::size_t i = 0; i < manual.size(); ++i)
        EXPECT_NEAR(aggregate[i], manual[i], 1e-12) << "bin " << i;
}

TEST(Spectrum, AggregateChsBinZeroIsTotalMass)
{
    const Distribution d = exampleDistribution();
    const auto aggregate = aggregateChs(d, 0);
    EXPECT_NEAR(aggregate[0], 1.0, 1e-12);
}

TEST(Spectrum, DefaultMaxDistanceMatchesPaperRule)
{
    // Largest d with d < n/2.
    EXPECT_EQ(defaultMaxDistance(4), 1);
    EXPECT_EQ(defaultMaxDistance(5), 2);
    EXPECT_EQ(defaultMaxDistance(8), 3);
    EXPECT_EQ(defaultMaxDistance(9), 4);
    EXPECT_EQ(defaultMaxDistance(10), 4);
    EXPECT_EQ(defaultMaxDistance(1), 0);
}

} // namespace
