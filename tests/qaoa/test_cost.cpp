/**
 * @file
 * Unit tests for the QAOA cost / cost-ratio machinery.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/distribution.hpp"
#include "graph/generators.hpp"
#include "qaoa/cost.hpp"

namespace {

using hammer::common::Bits;
using hammer::common::Rng;
using hammer::core::Distribution;
using hammer::graph::Graph;
using namespace hammer::qaoa;

TEST(Cost, ExpectationOfPointMass)
{
    const Graph g = hammer::graph::ring(4);
    Distribution d(4);
    d.set(0b0101, 1.0);
    // Alternating cut on an even ring cuts every edge: cost -4.
    EXPECT_DOUBLE_EQ(costExpectation(d, g), -4.0);
}

TEST(Cost, ExpectationIsLinearInProbabilities)
{
    const Graph g = hammer::graph::ring(4);
    Distribution d(4);
    d.set(0b0101, 0.5);  // cost -4
    d.set(0b0000, 0.5);  // cost +4
    EXPECT_NEAR(costExpectation(d, g), 0.0, 1e-12);
}

TEST(Cost, UniformDistributionHasZeroExpectation)
{
    // Each edge contributes E[z_u z_v] = 0 under uniform bits.
    const Graph g = hammer::graph::ring(6);
    std::vector<double> dense(64, 1.0 / 64.0);
    const Distribution d = Distribution::fromDense(6, dense);
    EXPECT_NEAR(costExpectation(d, g), 0.0, 1e-12);
}

TEST(Cost, CostRatioOfOptimalCutIsOne)
{
    const Graph g = hammer::graph::ring(6);
    Distribution d(6);
    d.set(0b010101, 1.0);
    EXPECT_NEAR(costRatio(d, g), 1.0, 1e-12);
}

TEST(Cost, CostRatioNegativeForAntiOptimalOutput)
{
    const Graph g = hammer::graph::ring(6);
    Distribution d(6);
    d.set(0b000000, 1.0); // cost +6, C_min = -6
    EXPECT_NEAR(costRatio(d, g), -1.0, 1e-12);
}

TEST(Cost, ExplicitMinCostOverloadAgrees)
{
    Rng rng(1);
    const Graph g = hammer::graph::kRegular(8, 3, rng);
    Distribution d(8);
    d.set(0b10101010, 0.6);
    d.set(0b01010101, 0.4);
    const double cmin = hammer::graph::bruteForceOptimum(g).minCost;
    EXPECT_NEAR(costRatio(d, g, cmin), costRatio(d, g), 1e-12);
}

TEST(Cost, CostRatioRejectsNonNegativeMin)
{
    const Graph g = hammer::graph::ring(4);
    Distribution d(4);
    d.set(0, 1.0);
    EXPECT_THROW(costRatio(d, g, 0.0), std::invalid_argument);
    EXPECT_THROW(costRatio(d, g, 2.0), std::invalid_argument);
}

TEST(Cost, WidthMismatchRejected)
{
    const Graph g = hammer::graph::ring(4);
    Distribution d(5);
    d.set(0, 1.0);
    EXPECT_THROW(costExpectation(d, g), std::invalid_argument);
}

TEST(Cost, CumulativeProbabilityAboveThreshold)
{
    const Graph g = hammer::graph::ring(4); // C_min = -4
    Distribution d(4);
    d.set(0b0101, 0.3);  // quality 1.0
    d.set(0b1010, 0.2);  // quality 1.0
    d.set(0b0001, 0.3);  // cost 0 -> quality 0
    d.set(0b0000, 0.2);  // cost +4 -> quality -1
    EXPECT_NEAR(cumulativeProbabilityAbove(d, g, -4.0, 1.0), 0.5, 1e-12);
    EXPECT_NEAR(cumulativeProbabilityAbove(d, g, -4.0, 0.0), 0.8, 1e-12);
    EXPECT_NEAR(cumulativeProbabilityAbove(d, g, -4.0, -1.0), 1.0,
                1e-12);
}

TEST(Cost, HigherQualityDistributionHasHigherRatio)
{
    Rng rng(2);
    const Graph g = hammer::graph::kRegular(6, 3, rng);
    const auto opt = hammer::graph::bruteForceOptimum(g);

    Distribution good(6), bad(6);
    good.set(opt.bestCuts.front(), 0.8);
    good.set(0, 0.2);
    bad.set(opt.bestCuts.front(), 0.2);
    bad.set(0, 0.8);
    EXPECT_GT(costRatio(good, g, opt.minCost),
              costRatio(bad, g, opt.minCost));
}

} // namespace
