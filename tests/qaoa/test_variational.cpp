/**
 * @file
 * Integration-grade tests for the variational QAOA driver.
 */

#include <gtest/gtest.h>

#include "circuits/coupling.hpp"
#include "graph/generators.hpp"
#include "noise/channel_sampler.hpp"
#include "qaoa/variational.hpp"

namespace {

using hammer::common::Rng;
using namespace hammer::qaoa;

TEST(Variational, IdealBackendFindsGoodAngles)
{
    Rng rng(1);
    const auto g = hammer::graph::ring(6);
    const auto coupling = hammer::circuits::CouplingMap::ring(6);
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("ideal"));

    VariationalOptions options;
    options.shotsPerEvaluation = 2048;
    const VariationalResult result =
        optimizeMaxcut(g, coupling, sampler, rng, options);

    EXPECT_GT(result.costRatio, 0.35)
        << "p=1 ideal QAOA on a ring should clear CR ~0.4";
    EXPECT_GT(result.evaluations, 25);
    EXPECT_EQ(result.finalDistribution.numBits(), 6);
    EXPECT_TRUE(result.finalDistribution.normalized(1e-9));
}

TEST(Variational, CostRatioConsistentWithExpectation)
{
    Rng rng(2);
    const auto g = hammer::graph::ring(4);
    const auto coupling = hammer::circuits::CouplingMap::full(4);
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("ideal"));
    VariationalOptions options;
    options.gridPointsPerDim = 3;
    options.refineEvaluations = 20;
    const VariationalResult result =
        optimizeMaxcut(g, coupling, sampler, rng, options);
    // CR = E[C] / C_min with C_min = -4 for the 4-ring.
    EXPECT_NEAR(result.costRatio, result.costExpectation / -4.0,
                1e-12);
}

TEST(Variational, HammerInTheLoopImprovesFinalQuality)
{
    Rng rng(3);
    const auto g = hammer::graph::ring(8);
    const auto coupling = hammer::circuits::CouplingMap::ring(8);
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("sycamore").scaled(2.5));

    VariationalOptions base;
    base.gridPointsPerDim = 4;
    base.refineEvaluations = 30;
    VariationalOptions with_hammer = base;
    with_hammer.useHammer = true;

    const double cr_base =
        optimizeMaxcut(g, coupling, sampler, rng, base).costRatio;
    const double cr_hammer =
        optimizeMaxcut(g, coupling, sampler, rng, with_hammer)
            .costRatio;
    EXPECT_GT(cr_hammer, cr_base);
}

TEST(Variational, MultiLayerScheduleHasRequestedDepth)
{
    Rng rng(4);
    const auto g = hammer::graph::ring(4);
    const auto coupling = hammer::circuits::CouplingMap::full(4);
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("ideal"));
    VariationalOptions options;
    options.layers = 3;
    options.gridPointsPerDim = 3;
    options.refineEvaluations = 15;
    const VariationalResult result =
        optimizeMaxcut(g, coupling, sampler, rng, options);
    EXPECT_EQ(result.params.layers(), 3);
}

TEST(Variational, RejectsBadOptions)
{
    Rng rng(5);
    const auto g = hammer::graph::ring(4);
    const auto coupling = hammer::circuits::CouplingMap::full(4);
    hammer::noise::ChannelSampler sampler(
        hammer::noise::machinePreset("ideal"));
    VariationalOptions bad;
    bad.layers = 0;
    EXPECT_THROW(optimizeMaxcut(g, coupling, sampler, rng, bad),
                 std::invalid_argument);
    VariationalOptions empty_box;
    empty_box.betaHi = empty_box.betaLo;
    EXPECT_THROW(optimizeMaxcut(g, coupling, sampler, rng, empty_box),
                 std::invalid_argument);
}

} // namespace
