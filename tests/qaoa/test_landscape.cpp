/**
 * @file
 * Unit tests for the (beta, gamma) landscape sweeps.
 */

#include <gtest/gtest.h>

#include "circuits/qaoa_circuit.hpp"
#include "graph/generators.hpp"
#include "qaoa/landscape.hpp"
#include "sim/simulator.hpp"

namespace {

using hammer::core::Distribution;
using hammer::graph::Graph;
using namespace hammer::qaoa;

/** Ideal-simulation distribution producer for a p=1 ansatz. */
DistributionAt
idealProducer(const Graph &g)
{
    return [&g](double beta, double gamma) {
        hammer::circuits::QaoaParams params;
        params.gammas = {gamma};
        params.betas = {beta};
        const auto state = hammer::sim::runCircuit(
            hammer::circuits::qaoaCircuit(g, params));
        return Distribution::fromProbabilityFn(
            g.numVertices(),
            [&](std::size_t i) { return state.probability(i); });
    };
}

TEST(Landscape, GridShapeMatchesRequest)
{
    const Graph g = hammer::graph::ring(4);
    const Landscape scape = sweepLandscape(
        g, idealProducer(g), 3, -0.5, 0.5, 4, 0.0, 1.0);
    EXPECT_EQ(scape.betas.size(), 3u);
    EXPECT_EQ(scape.gammas.size(), 4u);
    ASSERT_EQ(scape.costRatio.size(), 3u);
    EXPECT_EQ(scape.costRatio[0].size(), 4u);
    EXPECT_DOUBLE_EQ(scape.betas.front(), -0.5);
    EXPECT_DOUBLE_EQ(scape.betas.back(), 0.5);
}

TEST(Landscape, ZeroAngleRowIsFlatZero)
{
    // beta = gamma = 0 keeps the uniform state whose CR is 0.
    const Graph g = hammer::graph::ring(4);
    const Landscape scape = sweepLandscape(
        g, idealProducer(g), 2, 0.0, 0.3, 2, 0.0, 0.4);
    EXPECT_NEAR(scape.costRatio[0][0], 0.0, 1e-9);
}

TEST(Landscape, IdealLandscapeHasStructure)
{
    const Graph g = hammer::graph::ring(6);
    const Landscape scape = sweepLandscape(
        g, idealProducer(g), 5, -0.8, 0.8, 5, 0.0, 1.6);
    EXPECT_GT(scape.peak(), 0.2)
        << "a good (beta, gamma) region must exist";
    EXPECT_GT(scape.meanGradientMagnitude(), 0.01)
        << "the ideal landscape is not flat";
}

TEST(Landscape, FlatteningProducerFlattensGradient)
{
    // Mixing the ideal distribution with uniform noise must reduce
    // the mean gradient (the Fig. 1c / Fig. 10b effect).
    const Graph g = hammer::graph::ring(6);
    const auto ideal = idealProducer(g);
    const DistributionAt noisy = [&](double beta, double gamma) {
        Distribution d = ideal(beta, gamma);
        Distribution out(d.numBits());
        const double dim =
            static_cast<double>(std::size_t{1} << d.numBits());
        for (std::size_t x = 0; x < (std::size_t{1} << d.numBits());
             ++x) {
            out.set(x, 0.2 * d.probability(x) + 0.8 / dim);
        }
        return out;
    };
    const Landscape sharp = sweepLandscape(
        g, ideal, 4, -0.8, 0.8, 4, 0.0, 1.6);
    const Landscape flat = sweepLandscape(
        g, noisy, 4, -0.8, 0.8, 4, 0.0, 1.6);
    EXPECT_LT(flat.meanGradientMagnitude(),
              sharp.meanGradientMagnitude());
    EXPECT_LT(flat.peak(), sharp.peak());
}

TEST(Landscape, RejectsDegenerateGrid)
{
    const Graph g = hammer::graph::ring(4);
    EXPECT_THROW(sweepLandscape(g, idealProducer(g), 1, 0, 1, 3, 0, 1),
                 std::invalid_argument);
}

TEST(Landscape, EmptyLandscapeHelpers)
{
    Landscape empty;
    EXPECT_DOUBLE_EQ(empty.meanGradientMagnitude(), 0.0);
}

} // namespace
