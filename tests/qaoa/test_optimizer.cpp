/**
 * @file
 * Unit tests for the Nelder-Mead and grid-search optimisers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "qaoa/optimizer.hpp"

namespace {

using namespace hammer::qaoa;

TEST(Optimizer, NelderMeadMinimisesQuadratic)
{
    const Objective f = [](const std::vector<double> &x) {
        return (x[0] - 2.0) * (x[0] - 2.0) +
               (x[1] + 1.0) * (x[1] + 1.0);
    };
    const OptimizeResult r = nelderMead(f, {0.0, 0.0});
    EXPECT_NEAR(r.best[0], 2.0, 1e-3);
    EXPECT_NEAR(r.best[1], -1.0, 1e-3);
    EXPECT_NEAR(r.value, 0.0, 1e-5);
}

TEST(Optimizer, NelderMeadOneDimensional)
{
    const Objective f = [](const std::vector<double> &x) {
        return std::cos(x[0]);
    };
    const OptimizeResult r = nelderMead(f, {3.0});
    EXPECT_NEAR(std::fmod(std::abs(r.best[0]), 2.0 * M_PI), M_PI, 1e-2);
    EXPECT_NEAR(r.value, -1.0, 1e-4);
}

TEST(Optimizer, NelderMeadRosenbrockMakesProgress)
{
    const Objective f = [](const std::vector<double> &x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    NelderMeadOptions options;
    options.maxEvaluations = 2000;
    const OptimizeResult r = nelderMead(f, {-1.2, 1.0}, options);
    EXPECT_LT(r.value, f({-1.2, 1.0}) * 0.01);
}

TEST(Optimizer, NelderMeadRespectsBudget)
{
    int calls = 0;
    const Objective f = [&calls](const std::vector<double> &x) {
        ++calls;
        return x[0] * x[0];
    };
    NelderMeadOptions options;
    options.maxEvaluations = 50;
    const OptimizeResult r = nelderMead(f, {10.0}, options);
    EXPECT_LE(calls, 60) << "small overshoot from the final shrink";
    EXPECT_EQ(r.evaluations, calls);
}

TEST(Optimizer, NelderMeadRejectsBadInput)
{
    const Objective f = [](const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(nelderMead(f, {}), std::invalid_argument);
    NelderMeadOptions tiny;
    tiny.maxEvaluations = 1;
    EXPECT_THROW(nelderMead(f, {0.0, 0.0}, tiny),
                 std::invalid_argument);
}

TEST(Optimizer, GridSearchFindsBestCell)
{
    const Objective f = [](const std::vector<double> &x) {
        return std::abs(x[0] - 0.5) + std::abs(x[1] - 0.25);
    };
    const OptimizeResult r = gridSearch(f, {0.0, 0.0}, {1.0, 1.0}, 5);
    EXPECT_NEAR(r.best[0], 0.5, 1e-12);
    EXPECT_NEAR(r.best[1], 0.25, 0.26);
    EXPECT_EQ(r.evaluations, 25);
}

TEST(Optimizer, GridSearchExactOnGridAlignedOptimum)
{
    const Objective f = [](const std::vector<double> &x) {
        return (x[0] - 0.5) * (x[0] - 0.5);
    };
    const OptimizeResult r = gridSearch(f, {0.0}, {1.0}, 3);
    EXPECT_DOUBLE_EQ(r.best[0], 0.5);
    EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(Optimizer, GridSearchSeedsNelderMead)
{
    // The common two-stage pattern: coarse scan then refine.
    const Objective f = [](const std::vector<double> &x) {
        return std::sin(5.0 * x[0]) + x[0] * x[0];
    };
    const OptimizeResult coarse = gridSearch(f, {-2.0}, {2.0}, 9);
    const OptimizeResult fine = nelderMead(f, coarse.best);
    EXPECT_LE(fine.value, coarse.value + 1e-12);
}

TEST(Optimizer, GridSearchRejectsBadBox)
{
    const Objective f = [](const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(gridSearch(f, {0.0}, {1.0, 2.0}, 3),
                 std::invalid_argument);
    EXPECT_THROW(gridSearch(f, {0.0}, {1.0}, 1), std::invalid_argument);
}

} // namespace
