/**
 * @file
 * Unit tests for PST, IST, TVD and classical fidelity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/metrics.hpp"

namespace {

using hammer::common::Bits;
using hammer::core::Distribution;
using namespace hammer::metrics;

Distribution
noisyBv3()
{
    Distribution d(3);
    d.set(0b111, 0.5);
    d.set(0b011, 0.3);
    d.set(0b101, 0.2);
    return d;
}

TEST(Metrics, PstSumsCorrectOutcomes)
{
    const Distribution d = noisyBv3();
    EXPECT_NEAR(pst(d, {0b111}), 0.5, 1e-12);
    EXPECT_NEAR(pst(d, {0b111, 0b011}), 0.8, 1e-12);
}

TEST(Metrics, PstZeroWhenCorrectNeverAppears)
{
    const Distribution d = noisyBv3();
    EXPECT_DOUBLE_EQ(pst(d, {0b000}), 0.0);
}

TEST(Metrics, IstRatioOfBestCorrectToBestIncorrect)
{
    const Distribution d = noisyBv3();
    EXPECT_NEAR(ist(d, {0b111}), 0.5 / 0.3, 1e-12);
}

TEST(Metrics, IstBelowOneWhenWrongAnswerDominates)
{
    Distribution d(3);
    d.set(0b111, 0.2);
    d.set(0b000, 0.6);
    d.set(0b001, 0.2);
    EXPECT_NEAR(ist(d, {0b111}), 0.2 / 0.6, 1e-12);
}

TEST(Metrics, IstInfiniteWithoutIncorrectOutcomes)
{
    Distribution d(2);
    d.set(0b11, 1.0);
    EXPECT_TRUE(std::isinf(ist(d, {0b11})));
}

TEST(Metrics, IstZeroWhenCorrectAbsent)
{
    Distribution d(2);
    d.set(0b00, 1.0);
    EXPECT_DOUBLE_EQ(ist(d, {0b11}), 0.0);
}

TEST(Metrics, IstWithMultipleCorrectTakesBest)
{
    Distribution d(2);
    d.set(0b00, 0.3);
    d.set(0b11, 0.5);
    d.set(0b01, 0.2);
    EXPECT_NEAR(ist(d, {0b00, 0b11}), 0.5 / 0.2, 1e-12);
}

TEST(Metrics, TvdIdenticalDistributionsIsZero)
{
    const Distribution d = noisyBv3();
    EXPECT_NEAR(tvd(d, d), 0.0, 1e-12);
}

TEST(Metrics, TvdDisjointSupportsIsOne)
{
    Distribution p(2), q(2);
    p.set(0b00, 1.0);
    q.set(0b11, 1.0);
    EXPECT_NEAR(tvd(p, q), 1.0, 1e-12);
}

TEST(Metrics, TvdHandComputedValue)
{
    Distribution p(2), q(2);
    p.set(0b00, 0.5);
    p.set(0b01, 0.5);
    q.set(0b00, 0.25);
    q.set(0b01, 0.25);
    q.set(0b10, 0.5);
    // 0.5 * (|0.5-0.25| + |0.5-0.25| + 0.5) = 0.5.
    EXPECT_NEAR(tvd(p, q), 0.5, 1e-12);
}

TEST(Metrics, TvdSymmetric)
{
    Distribution p(3), q(3);
    p.set(0b000, 0.6);
    p.set(0b111, 0.4);
    q.set(0b000, 0.1);
    q.set(0b101, 0.9);
    EXPECT_NEAR(tvd(p, q), tvd(q, p), 1e-12);
}

TEST(Metrics, TvdRejectsWidthMismatch)
{
    Distribution p(2), q(3);
    p.set(0, 1.0);
    q.set(0, 1.0);
    EXPECT_THROW(tvd(p, q), std::invalid_argument);
}

TEST(Metrics, FidelityIdenticalIsOne)
{
    const Distribution d = noisyBv3();
    EXPECT_NEAR(classicalFidelity(d, d), 1.0, 1e-12);
}

TEST(Metrics, FidelityDisjointIsZero)
{
    Distribution p(2), q(2);
    p.set(0b00, 1.0);
    q.set(0b11, 1.0);
    EXPECT_NEAR(classicalFidelity(p, q), 0.0, 1e-12);
}

TEST(Metrics, FidelityHandComputedValue)
{
    Distribution p(1), q(1);
    p.set(0, 0.5);
    p.set(1, 0.5);
    q.set(0, 1.0);
    // (sqrt(0.5 * 1))^2 = 0.5.
    EXPECT_NEAR(classicalFidelity(p, q), 0.5, 1e-12);
}

TEST(Metrics, FidelityBoundedAndSymmetric)
{
    Distribution p(2), q(2);
    p.set(0b00, 0.7);
    p.set(0b01, 0.3);
    q.set(0b00, 0.2);
    q.set(0b10, 0.8);
    const double f = classicalFidelity(p, q);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    EXPECT_NEAR(f, classicalFidelity(q, p), 1e-12);
}

TEST(Metrics, InferredCorrectlyMatchesArgmax)
{
    const Distribution d = noisyBv3();
    EXPECT_TRUE(inferredCorrectly(d, {0b111}));
    EXPECT_FALSE(inferredCorrectly(d, {0b011}));
    EXPECT_TRUE(inferredCorrectly(d, {0b011, 0b111}));
}

TEST(Metrics, RejectsEmptyReferences)
{
    const Distribution d = noisyBv3();
    EXPECT_THROW(pst(d, {}), std::invalid_argument);
    EXPECT_THROW(ist(d, {}), std::invalid_argument);
}

} // namespace
