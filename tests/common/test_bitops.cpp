/**
 * @file
 * Unit tests for common/bitops: Hamming distances, bitstring
 * conversions, neighbourhood enumeration and binomials.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/bitops.hpp"

namespace {

using hammer::common::binomial;
using hammer::common::Bits;
using hammer::common::fromBitstring;
using hammer::common::hammingDistance;
using hammer::common::minHammingDistance;
using hammer::common::neighborsAtDistance;
using hammer::common::popcount;
using hammer::common::toBitstring;

TEST(Bitops, PopcountBasics)
{
    EXPECT_EQ(popcount(0), 0);
    EXPECT_EQ(popcount(1), 1);
    EXPECT_EQ(popcount(0b1011), 3);
    EXPECT_EQ(popcount(~Bits{0}), 64);
}

TEST(Bitops, HammingDistanceSymmetric)
{
    EXPECT_EQ(hammingDistance(0b1010, 0b0101), 4);
    EXPECT_EQ(hammingDistance(0b1010, 0b1010), 0);
    EXPECT_EQ(hammingDistance(0b111, 0b110), 1);
    EXPECT_EQ(hammingDistance(0b110, 0b111),
              hammingDistance(0b111, 0b110));
}

TEST(Bitops, MinHammingDistanceUsesClosestTarget)
{
    const std::vector<Bits> targets{0b0000, 0b1111};
    EXPECT_EQ(minHammingDistance(0b0001, targets), 1);
    EXPECT_EQ(minHammingDistance(0b0111, targets), 1);
    EXPECT_EQ(minHammingDistance(0b0011, targets), 2);
    EXPECT_EQ(minHammingDistance(0b0000, targets), 0);
}

TEST(Bitops, MinHammingDistanceRejectsEmptyTargets)
{
    EXPECT_THROW(minHammingDistance(0, {}), std::invalid_argument);
}

TEST(Bitops, ToBitstringMsbLeft)
{
    EXPECT_EQ(toBitstring(0b0001, 4), "0001");
    EXPECT_EQ(toBitstring(0b1000, 4), "1000");
    EXPECT_EQ(toBitstring(0b1010, 4), "1010");
    EXPECT_EQ(toBitstring(0, 3), "000");
}

TEST(Bitops, FromBitstringRoundTrip)
{
    for (Bits x : {Bits{0}, Bits{1}, Bits{0b1011}, Bits{0b111111}}) {
        EXPECT_EQ(fromBitstring(toBitstring(x, 6)), x)
            << "round trip failed for " << x;
    }
}

TEST(Bitops, FromBitstringRejectsGarbage)
{
    EXPECT_THROW(fromBitstring("01x"), std::invalid_argument);
    EXPECT_THROW(fromBitstring(""), std::invalid_argument);
}

TEST(Bitops, NeighborsAtDistanceSizeMatchesBinomial)
{
    for (int n : {4, 6, 10}) {
        for (int d = 0; d <= n; ++d) {
            const auto neigh = neighborsAtDistance(0, n, d);
            EXPECT_EQ(neigh.size(),
                      static_cast<std::size_t>(binomial(n, d)))
                << "n=" << n << " d=" << d;
        }
    }
}

TEST(Bitops, NeighborsAtDistanceAllAtExactDistance)
{
    const Bits center = 0b1100101;
    const int n = 7;
    for (int d = 0; d <= 3; ++d) {
        for (Bits x : neighborsAtDistance(center, n, d))
            EXPECT_EQ(hammingDistance(center, x), d);
    }
}

TEST(Bitops, NeighborsAtDistanceUniqueAndInRange)
{
    const int n = 6;
    const auto neigh = neighborsAtDistance(0b101010, n, 2);
    std::set<Bits> unique(neigh.begin(), neigh.end());
    EXPECT_EQ(unique.size(), neigh.size());
    for (Bits x : neigh)
        EXPECT_LT(x, Bits{1} << n);
}

TEST(Bitops, BinomialKnownValues)
{
    EXPECT_DOUBLE_EQ(binomial(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
    EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
    EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
    EXPECT_DOUBLE_EQ(binomial(10, 5), 252.0);
    EXPECT_DOUBLE_EQ(binomial(20, 10), 184756.0);
}

TEST(Bitops, BinomialOutOfRangeIsZero)
{
    EXPECT_DOUBLE_EQ(binomial(5, -1), 0.0);
    EXPECT_DOUBLE_EQ(binomial(5, 6), 0.0);
}

TEST(Bitops, BinomialRowSumsToPowerOfTwo)
{
    for (int n : {8, 12, 16}) {
        double total = 0.0;
        for (int k = 0; k <= n; ++k)
            total += binomial(n, k);
        EXPECT_NEAR(total, std::pow(2.0, n), 1e-6);
    }
}

class HammingDistanceProperty
    : public ::testing::TestWithParam<int>
{
};

TEST_P(HammingDistanceProperty, TriangleInequalityHolds)
{
    // Deterministic pseudo-random triples derived from the parameter.
    const int seed = GetParam();
    Bits a = static_cast<Bits>(seed) * 0x9E3779B97F4A7C15ull;
    Bits b = a * 6364136223846793005ull + 1442695040888963407ull;
    Bits c = b * 6364136223846793005ull + 1442695040888963407ull;
    a &= 0xFFFF;
    b &= 0xFFFF;
    c &= 0xFFFF;
    EXPECT_LE(hammingDistance(a, c),
              hammingDistance(a, b) + hammingDistance(b, c));
}

INSTANTIATE_TEST_SUITE_P(Triples, HammingDistanceProperty,
                         ::testing::Range(1, 33));

} // namespace
