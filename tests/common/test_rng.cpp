/**
 * @file
 * Unit tests for the deterministic RNG: reproducibility, range
 * contracts, and first-moment sanity of each sampling primitive.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace {

using hammer::common::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double total = 0.0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i)
        total += rng.uniform();
    EXPECT_NEAR(total / samples, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.5, 7.5);
        EXPECT_GE(v, -2.5);
        EXPECT_LT(v, 7.5);
    }
}

TEST(Rng, UniformIntWithinBound)
{
    Rng rng(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u) << "all residues should appear";
}

TEST(Rng, UniformIntBoundOneAlwaysZero)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, UniformIntRejectsZeroBound)
{
    Rng rng(23);
    EXPECT_THROW(rng.uniformInt(0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequencyTracksP)
{
    Rng rng(31);
    const double p = 0.3;
    int hits = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i) {
        if (rng.bernoulli(p))
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials, p, 0.02);
}

TEST(Rng, NormalMomentsRoughlyStandard)
{
    Rng rng(37);
    const int samples = 50000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < samples; ++i) {
        const double z = rng.normal();
        sum += z;
        sum_sq += z * z;
    }
    EXPECT_NEAR(sum / samples, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / samples, 1.0, 0.05);
}

TEST(Rng, DiscreteMatchesWeights)
{
    Rng rng(41);
    const std::vector<double> weights{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int trials = 60000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.015);
    EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.6, 0.015);
}

TEST(Rng, DiscreteSkipsZeroWeights)
{
    Rng rng(43);
    const std::vector<double> weights{0.0, 1.0, 0.0};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.discrete(weights), 1u);
}

TEST(Rng, DiscreteRejectsDegenerateInput)
{
    Rng rng(47);
    EXPECT_THROW(rng.discrete({}), std::invalid_argument);
    EXPECT_THROW(rng.discrete({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(rng.discrete({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(53);
    Rng child = parent.split();
    // The child stream should not track the parent.
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent() == child())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng a(59), b(59);
    Rng ca = a.split();
    Rng cb = b.split();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(ca(), cb());
}

TEST(Rng, ForkDoesNotAdvanceParent)
{
    Rng forked(61), untouched(61);
    (void)forked.fork(0);
    (void)forked.fork(123456789);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(forked(), untouched());
}

TEST(Rng, ForkIsAPureFunctionOfStateAndStreamId)
{
    const Rng parent(67);
    // Forking the same stream twice — and in any order relative to
    // other streams — yields the same generator.
    Rng first = parent.fork(7);
    (void)parent.fork(3);
    Rng second = parent.fork(7);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(first(), second());
}

TEST(Rng, ForkedStreamsAreMutuallyIndependent)
{
    const Rng parent(71);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    Rng c = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        const auto va = a(), vb = b(), vc = c();
        if (va == vb || vb == vc || va == vc)
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkedStreamDiffersFromParentStream)
{
    const Rng parent(73);
    Rng child = parent.fork(0);
    Rng parent_copy = parent;
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent_copy() == child())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, AdjacentStreamIdsDecorrelate)
{
    // Counter-based derivation must not map nearby counters to
    // nearby states: check uniform() means of adjacent streams look
    // independent.
    const Rng parent(79);
    for (std::uint64_t id = 0; id < 8; ++id) {
        Rng stream = parent.fork(id);
        double mean = 0.0;
        for (int i = 0; i < 4000; ++i)
            mean += stream.uniform();
        mean /= 4000;
        EXPECT_NEAR(mean, 0.5, 0.05) << "stream " << id;
    }
}

TEST(Rng, JumpIsDeterministicAndLeavesTheOrbit)
{
    Rng a(83), b(83);
    a.jump();
    b.jump();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a(), b());

    // A jumped generator must not collide with the original stream's
    // prefix.
    Rng original(83), jumped(83);
    jumped.jump();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (original() == jumped())
            ++same;
    }
    EXPECT_LT(same, 2);
}

} // namespace
