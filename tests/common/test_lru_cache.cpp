/**
 * @file
 * LruCache: bounded capacity, recency on get and put, eviction
 * order.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/lru_cache.hpp"

namespace {

using hammer::common::LruCache;

TEST(LruCache, StoresAndRetrieves)
{
    LruCache<int> cache(3);
    EXPECT_EQ(cache.capacity(), 3u);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.get("a"), nullptr);

    cache.put("a", 1);
    cache.put("b", 2);
    ASSERT_NE(cache.get("a"), nullptr);
    EXPECT_EQ(*cache.get("a"), 1);
    EXPECT_EQ(*cache.get("b"), 2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.contains("a"));
    EXPECT_FALSE(cache.contains("c"));
}

TEST(LruCache, PutOverwritesInPlace)
{
    LruCache<int> cache(2);
    cache.put("a", 1);
    cache.put("a", 10);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(*cache.get("a"), 10);
}

TEST(LruCache, EvictsTheLeastRecentlyUsed)
{
    LruCache<int> cache(2);
    cache.put("a", 1);
    cache.put("b", 2);
    cache.put("c", 3); // evicts "a"
    EXPECT_FALSE(cache.contains("a"));
    EXPECT_TRUE(cache.contains("b"));
    EXPECT_TRUE(cache.contains("c"));
    EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, GetRefreshesRecency)
{
    LruCache<int> cache(2);
    cache.put("a", 1);
    cache.put("b", 2);
    EXPECT_EQ(*cache.get("a"), 1); // "b" is now LRU
    cache.put("c", 3);             // evicts "b"
    EXPECT_TRUE(cache.contains("a"));
    EXPECT_FALSE(cache.contains("b"));
}

TEST(LruCache, PutRefreshesRecency)
{
    LruCache<int> cache(2);
    cache.put("a", 1);
    cache.put("b", 2);
    cache.put("a", 10); // "b" is now LRU
    cache.put("c", 3);  // evicts "b"
    EXPECT_TRUE(cache.contains("a"));
    EXPECT_FALSE(cache.contains("b"));
}

TEST(LruCache, ClearAndCapacityValidation)
{
    LruCache<int> cache(2);
    cache.put("a", 1);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.contains("a"));
    EXPECT_THROW(LruCache<int>(0), std::invalid_argument);
}

} // namespace
