/**
 * @file
 * Unit tests for common/stats, including the Spearman correlation
 * used by the Fig. 11 entanglement study.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace {

using namespace hammer::common;

TEST(Stats, MeanSimple)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
}

TEST(Stats, MeanRejectsEmpty)
{
    EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, VarianceAndStddev)
{
    // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, VarianceOfSingletonIsZero)
{
    EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
}

TEST(Stats, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, GeomeanKnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive)
{
    EXPECT_THROW(geomean({1.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(geomean({1.0, -2.0}), std::invalid_argument);
}

TEST(Stats, MinMax)
{
    const std::vector<double> xs{3.0, -1.0, 7.0, 0.0};
    EXPECT_DOUBLE_EQ(minimum(xs), -1.0);
    EXPECT_DOUBLE_EQ(maximum(xs), 7.0);
}

TEST(Stats, RanksWithoutTies)
{
    const auto r = ranks({30.0, 10.0, 20.0});
    ASSERT_EQ(r.size(), 3u);
    EXPECT_DOUBLE_EQ(r[0], 3.0);
    EXPECT_DOUBLE_EQ(r[1], 1.0);
    EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Stats, RanksAverageTies)
{
    const auto r = ranks({10.0, 20.0, 20.0, 30.0});
    ASSERT_EQ(r.size(), 4u);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    const std::vector<double> xs{1, 2, 3, 4};
    const std::vector<double> ys{2, 4, 6, 8};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAntiCorrelation)
{
    const std::vector<double> xs{1, 2, 3, 4};
    const std::vector<double> ys{8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(Stats, PearsonRejectsMismatchedSizes)
{
    EXPECT_THROW(pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
    EXPECT_THROW(pearson({1}, {1}), std::invalid_argument);
}

TEST(Stats, SpearmanMonotonicNonlinearIsOne)
{
    // y = x^3 is monotone, so Spearman is exactly 1 where Pearson
    // would be < 1.
    const std::vector<double> xs{1, 2, 3, 4, 5};
    const std::vector<double> ys{1, 8, 27, 64, 125};
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
    EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Stats, SpearmanHandlesTies)
{
    const std::vector<double> xs{1, 2, 2, 3};
    const std::vector<double> ys{1, 2, 2, 3};
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, SpearmanUncorrelatedNearZero)
{
    // A fixed scrambled sequence with no monotone trend.
    const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<double> ys{3, 8, 1, 6, 2, 7, 4, 5};
    EXPECT_LT(std::abs(spearman(xs, ys)), 0.5);
}

} // namespace
