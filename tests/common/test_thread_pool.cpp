/**
 * @file
 * Unit tests for the fixed-size thread pool: completeness of the
 * parallel-for, slot-id contracts, exception propagation, reuse
 * across rounds, and the future-returning priority job queue.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace {

using hammer::common::ThreadPool;

TEST(ThreadPool, RunsEveryItemExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(), [&](std::size_t item) {
        hits[item].fetch_add(1);
    });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    std::vector<int> order;
    pool.parallelFor(5, [&](std::size_t item, int slot) {
        EXPECT_EQ(slot, 0);
        order.push_back(static_cast<int>(item));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, SlotIdsStayInRange)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> per_slot(3);
    pool.parallelFor(100, [&](std::size_t, int slot) {
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, 3);
        per_slot[static_cast<std::size_t>(slot)].fetch_add(1);
    });
    int total = 0;
    for (const auto &count : per_slot)
        total += count.load();
    EXPECT_EQ(total, 100);
}

TEST(ThreadPool, ZeroItemsIsANoOp)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossRounds)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<long> sum{0};
        pool.parallelFor(64, [&](std::size_t item) {
            sum.fetch_add(static_cast<long>(item));
        });
        EXPECT_EQ(sum.load(), 64L * 63 / 2);
    }
}

TEST(ThreadPool, PerSlotAccumulatorsNeedNoSynchronisation)
{
    // The usage pattern of the sampling engine: every worker writes
    // only to its own slot, and the partials are merged afterwards.
    ThreadPool pool(4);
    std::vector<long> partial(
        static_cast<std::size_t>(pool.threadCount()), 0);
    pool.parallelFor(1000, [&](std::size_t item, int slot) {
        partial[static_cast<std::size_t>(slot)] +=
            static_cast<long>(item);
    });
    const long total =
        std::accumulate(partial.begin(), partial.end(), 0L);
    EXPECT_EQ(total, 1000L * 999 / 2);
}

TEST(ThreadPool, PropagatesTaskException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](std::size_t item) {
                             if (item == 37)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must still be usable after a failed round.
    std::atomic<int> hits{0};
    pool.parallelFor(10, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 10);
}

TEST(ThreadPool, RejectsNegativeThreadCount)
{
    EXPECT_THROW(ThreadPool(-1), std::invalid_argument);
}

TEST(ThreadPool, DefaultThreadCountIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1);
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1);
}

TEST(ThreadPool, ResolveThreadCountCapsAtItemCount)
{
    EXPECT_EQ(ThreadPool::resolveThreadCount(8, 3), 3);
    EXPECT_EQ(ThreadPool::resolveThreadCount(2, 100), 2);
    EXPECT_EQ(ThreadPool::resolveThreadCount(5, 0), 1);
    EXPECT_GE(ThreadPool::resolveThreadCount(0, 1000), 1);
    EXPECT_THROW(ThreadPool::resolveThreadCount(-2, 10),
                 std::invalid_argument);
}

TEST(ThreadPool, StaticRunCoversAllItems)
{
    // Both branches: worker count matching the shared pool (reuse)
    // and a mismatching one (temporary pool).
    for (int workers :
         {ThreadPool::shared().threadCount(),
          ThreadPool::shared().threadCount() + 1}) {
        std::vector<std::atomic<int>> hits(57);
        ThreadPool::run(workers, hits.size(),
                        [&](std::size_t item, int slot) {
                            ASSERT_GE(slot, 0);
                            ASSERT_LT(slot, workers);
                            hits[item].fetch_add(1);
                        });
        for (const auto &hit : hits)
            EXPECT_EQ(hit.load(), 1);
    }
}

TEST(ThreadPool, SubmitReturnsAFutureWithTheResult)
{
    ThreadPool pool(2);
    auto doubled = pool.submit([] { return 21 * 2; });
    auto text = pool.submit([] { return std::string("queued"); });
    EXPECT_EQ(doubled.get(), 42);
    EXPECT_EQ(text.get(), "queued");
}

TEST(ThreadPool, SubmitCapturesExceptionsIntoTheFuture)
{
    ThreadPool pool(2);
    auto failing = pool.submit(
        []() -> int { throw std::runtime_error("job failed"); });
    EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitRunsInlineOnASingleThreadPool)
{
    // No dedicated workers: the job must complete before submit
    // returns, on the calling thread.
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    auto done = pool.submit([&] { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(done.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, SubmitDrainsHighestPriorityFirstThenFifo)
{
    // One dedicated worker (pool of 2), gated so the queue fills
    // before anything drains: the drain order must be priority
    // descending, FIFO within a priority level.
    ThreadPool pool(2);
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    auto blocker = pool.submit([open] { open.wait(); });
    // Wait until the worker has dequeued the blocker, so the jobs
    // below pile up behind it in a fully known queue state.
    while (pool.queuedJobs() > 0)
        std::this_thread::yield();

    std::mutex order_mutex;
    std::vector<int> order;
    std::vector<std::future<void>> jobs;
    const auto record = [&](int tag) {
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(tag);
    };
    jobs.push_back(pool.submit([&] { record(0); }, /*priority=*/0));
    jobs.push_back(pool.submit([&] { record(1); }, /*priority=*/0));
    jobs.push_back(pool.submit([&] { record(10); }, /*priority=*/5));
    jobs.push_back(pool.submit([&] { record(11); }, /*priority=*/5));
    jobs.push_back(pool.submit([&] { record(-1); }, /*priority=*/-3));
    EXPECT_EQ(pool.queuedJobs(), 5u);

    gate.set_value();
    blocker.get();
    for (auto &job : jobs)
        job.get();
    EXPECT_EQ(order, (std::vector<int>{10, 11, 0, 1, -1}));
}

TEST(ThreadPool, TryRunOneJobLetsTheCallerParticipate)
{
    // With the only dedicated worker blocked, the caller can drain
    // the whole queue itself — the participation primitive the
    // serving layer's wait() builds on.
    ThreadPool pool(2);
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    auto blocker = pool.submit([open] { open.wait(); });
    while (pool.queuedJobs() > 0)
        std::this_thread::yield();

    std::atomic<int> ran{0};
    std::vector<std::future<void>> jobs;
    for (int i = 0; i < 3; ++i)
        jobs.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    while (pool.tryRunOneJob()) {
    }
    EXPECT_EQ(ran.load(), 3);
    EXPECT_FALSE(pool.tryRunOneJob());

    gate.set_value();
    blocker.get();
    for (auto &job : jobs)
        job.get();
}

TEST(ThreadPool, DestructorDiscardsUnstartedJobsWithBrokenPromise)
{
    // Jobs still queued at destruction are discarded — their futures
    // become ready with broken_promise, and none of their work runs
    // on the destructing thread (abandoning a batch must not grind
    // through its backlog).  The already-running job completes.
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::atomic<int> ran{0};
    std::future<void> started;
    std::vector<std::future<int>> discarded;
    {
        ThreadPool pool(2);
        started = pool.submit([open, &ran] {
            open.wait();
            ran.fetch_add(1);
        });
        while (pool.queuedJobs() > 0)
            std::this_thread::yield();
        for (int i = 0; i < 4; ++i)
            discarded.push_back(pool.submit([&ran, i] {
                ran.fetch_add(1);
                return i;
            }));
        gate.set_value();
        // Destructor joins the worker; the worker may pick up some
        // queued jobs before seeing stop_, the rest are discarded.
    }
    EXPECT_NO_THROW(started.get());
    int completed = 0;
    for (auto &future : discarded) {
        try {
            future.get();
            ++completed;
        } catch (const std::future_error &error) {
            EXPECT_EQ(error.code(),
                      std::future_errc::broken_promise);
        }
    }
    EXPECT_EQ(ran.load(), 1 + completed);
}

TEST(ThreadPool, SubmitAndParallelForShareTheWorkers)
{
    // Rounds pre-empt the queue but both drain to completion.
    ThreadPool pool(3);
    std::atomic<int> job_hits{0}, round_hits{0};
    std::vector<std::future<void>> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back(
            pool.submit([&] { job_hits.fetch_add(1); }));
    pool.parallelFor(32, [&](std::size_t) {
        round_hits.fetch_add(1);
    });
    for (auto &job : jobs)
        job.get();
    EXPECT_EQ(job_hits.load(), 8);
    EXPECT_EQ(round_hits.load(), 32);
}

TEST(ThreadPool, ConcurrentCallersOnSharedPoolSerialise)
{
    // Two threads driving the shared pool at once must not corrupt
    // each other's rounds.
    std::atomic<long> total{0};
    auto hammer_rounds = [&] {
        for (int round = 0; round < 25; ++round) {
            ThreadPool::shared().parallelFor(
                40, [&](std::size_t item) {
                    total.fetch_add(static_cast<long>(item));
                });
        }
    };
    std::thread a(hammer_rounds), b(hammer_rounds);
    a.join();
    b.join();
    EXPECT_EQ(total.load(), 2L * 25 * (40L * 39 / 2));
}

} // namespace
