/**
 * @file
 * Unit tests for the fixed-size thread pool: completeness of the
 * parallel-for, slot-id contracts, exception propagation, and reuse
 * across rounds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace {

using hammer::common::ThreadPool;

TEST(ThreadPool, RunsEveryItemExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(), [&](std::size_t item) {
        hits[item].fetch_add(1);
    });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    std::vector<int> order;
    pool.parallelFor(5, [&](std::size_t item, int slot) {
        EXPECT_EQ(slot, 0);
        order.push_back(static_cast<int>(item));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, SlotIdsStayInRange)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> per_slot(3);
    pool.parallelFor(100, [&](std::size_t, int slot) {
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, 3);
        per_slot[static_cast<std::size_t>(slot)].fetch_add(1);
    });
    int total = 0;
    for (const auto &count : per_slot)
        total += count.load();
    EXPECT_EQ(total, 100);
}

TEST(ThreadPool, ZeroItemsIsANoOp)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossRounds)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<long> sum{0};
        pool.parallelFor(64, [&](std::size_t item) {
            sum.fetch_add(static_cast<long>(item));
        });
        EXPECT_EQ(sum.load(), 64L * 63 / 2);
    }
}

TEST(ThreadPool, PerSlotAccumulatorsNeedNoSynchronisation)
{
    // The usage pattern of the sampling engine: every worker writes
    // only to its own slot, and the partials are merged afterwards.
    ThreadPool pool(4);
    std::vector<long> partial(
        static_cast<std::size_t>(pool.threadCount()), 0);
    pool.parallelFor(1000, [&](std::size_t item, int slot) {
        partial[static_cast<std::size_t>(slot)] +=
            static_cast<long>(item);
    });
    const long total =
        std::accumulate(partial.begin(), partial.end(), 0L);
    EXPECT_EQ(total, 1000L * 999 / 2);
}

TEST(ThreadPool, PropagatesTaskException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](std::size_t item) {
                             if (item == 37)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must still be usable after a failed round.
    std::atomic<int> hits{0};
    pool.parallelFor(10, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 10);
}

TEST(ThreadPool, RejectsNegativeThreadCount)
{
    EXPECT_THROW(ThreadPool(-1), std::invalid_argument);
}

TEST(ThreadPool, DefaultThreadCountIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1);
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1);
}

TEST(ThreadPool, ResolveThreadCountCapsAtItemCount)
{
    EXPECT_EQ(ThreadPool::resolveThreadCount(8, 3), 3);
    EXPECT_EQ(ThreadPool::resolveThreadCount(2, 100), 2);
    EXPECT_EQ(ThreadPool::resolveThreadCount(5, 0), 1);
    EXPECT_GE(ThreadPool::resolveThreadCount(0, 1000), 1);
    EXPECT_THROW(ThreadPool::resolveThreadCount(-2, 10),
                 std::invalid_argument);
}

TEST(ThreadPool, StaticRunCoversAllItems)
{
    // Both branches: worker count matching the shared pool (reuse)
    // and a mismatching one (temporary pool).
    for (int workers :
         {ThreadPool::shared().threadCount(),
          ThreadPool::shared().threadCount() + 1}) {
        std::vector<std::atomic<int>> hits(57);
        ThreadPool::run(workers, hits.size(),
                        [&](std::size_t item, int slot) {
                            ASSERT_GE(slot, 0);
                            ASSERT_LT(slot, workers);
                            hits[item].fetch_add(1);
                        });
        for (const auto &hit : hits)
            EXPECT_EQ(hit.load(), 1);
    }
}

TEST(ThreadPool, ConcurrentCallersOnSharedPoolSerialise)
{
    // Two threads driving the shared pool at once must not corrupt
    // each other's rounds.
    std::atomic<long> total{0};
    auto hammer_rounds = [&] {
        for (int round = 0; round < 25; ++round) {
            ThreadPool::shared().parallelFor(
                40, [&](std::size_t item) {
                    total.fetch_add(static_cast<long>(item));
                });
        }
    };
    std::thread a(hammer_rounds), b(hammer_rounds);
    a.join();
    b.join();
    EXPECT_EQ(total.load(), 2L * 25 * (40L * 39 / 2));
}

} // namespace
