/**
 * @file
 * Unit tests for the table printer used by the bench harness.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace {

using hammer::common::Table;

TEST(Table, HeaderAppearsInOutput)
{
    Table t({"name", "value"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("name"), std::string::npos);
    EXPECT_NE(os.str().find("value"), std::string::npos);
}

TEST(Table, RowsRenderInOrder)
{
    Table t({"k", "v"});
    t.addRow({"first", "1"});
    t.addRow({"second", "2"});
    std::ostringstream os;
    t.print(os);
    const auto text = os.str();
    EXPECT_LT(text.find("first"), text.find("second"));
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRowWidth)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
    EXPECT_THROW(t.addRow({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader)
{
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FmtDoublePrecision)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(1.0, 1), "1.0");
    EXPECT_EQ(Table::fmt(-0.5, 3), "-0.500");
}

TEST(Table, FmtInteger)
{
    EXPECT_EQ(Table::fmt(42ll), "42");
    EXPECT_EQ(Table::fmt(-7ll), "-7");
}

TEST(Table, CsvHasCommasAndNewlines)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, ColumnsAlignedToWidestCell)
{
    Table t({"c", "d"});
    t.addRow({"wide-cell-content", "x"});
    std::ostringstream os;
    t.print(os);
    // The header line must be padded at least as wide as the widest
    // cell in its column.
    const std::string text = os.str();
    const auto first_newline = text.find('\n');
    EXPECT_GE(first_newline, std::string{"wide-cell-content"}.size());
}

} // namespace
