#!/usr/bin/env bash
# Multi-process shard smoke: two real `hammer_cli --shard` workers on
# Unix-domain sockets, a `--serve --shards` router over both, and a
# byte-for-byte diff against the single-process `--serve --canonical`
# run.  Usage: shard_smoke.sh <hammer_cli> <specs-file>
set -euo pipefail

cli=$1
specs=$2

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2> /dev/null || true
    done
    for pid in "${pids[@]:-}"; do
        wait "$pid" 2> /dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

addresses=()
for i in 0 1; do
    sock="$workdir/shard$i.sock"
    "$cli" --shard --listen "unix:$sock" 2> "$workdir/shard$i.log" &
    pids+=($!)
    addresses+=("unix:$sock")
done

# Wait (bounded) for both listeners to come up.
for sock in "$workdir"/shard0.sock "$workdir"/shard1.sock; do
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && break
        sleep 0.05
    done
    [ -S "$sock" ] || {
        echo "FAIL: $sock never appeared" >&2
        cat "$workdir"/shard*.log >&2 || true
        exit 1
    }
done

"$cli" --serve "$specs" --canonical \
    --shards "${addresses[0]},${addresses[1]}" \
    > "$workdir/sharded.out" 2> "$workdir/router.log"
"$cli" --serve "$specs" --canonical \
    > "$workdir/local.out" 2> "$workdir/local.log"

if ! diff -u "$workdir/local.out" "$workdir/sharded.out"; then
    echo "FAIL: sharded results differ from the local run" >&2
    cat "$workdir/router.log" >&2
    exit 1
fi

# Stop the shards; each must emit its service_stats JSON line on exit.
for pid in "${pids[@]}"; do
    kill -TERM "$pid"
done
for pid in "${pids[@]}"; do
    wait "$pid" || {
        echo "FAIL: a shard exited non-zero" >&2
        cat "$workdir"/shard*.log >&2
        exit 1
    }
done
pids=()

for i in 0 1; do
    grep -q '"type":"service_stats"' "$workdir/shard$i.log" || {
        echo "FAIL: shard$i emitted no service_stats line" >&2
        cat "$workdir/shard$i.log" >&2
        exit 1
    }
done
grep -q '"type":"service_stats"' "$workdir/local.log" || {
    echo "FAIL: --serve emitted no service_stats line" >&2
    cat "$workdir/local.log" >&2
    exit 1
}

echo "PASS: sharded output byte-identical to local --serve"
