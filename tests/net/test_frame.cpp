/**
 * @file
 * Wire-framing tests against hostile input: truncated frames,
 * corrupted checksums, oversized length prefixes, partial writes and
 * chaos::hostileSpecLines bodies all resolve to typed WireErrors or
 * byte-exact round-trips — never hangs, allocpocalypses or UB.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "chaos/fault_plan.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace {

using hammer::net::encodeErrorPayload;
using hammer::net::encodeFrame;
using hammer::net::encodeJobPayload;
using hammer::net::Frame;
using hammer::net::FrameType;
using hammer::net::JobPayload;
using hammer::net::kFrameHeaderBytes;
using hammer::net::Listener;
using hammer::net::parseJobPayload;
using hammer::net::readFrame;
using hammer::net::Socket;
using hammer::net::WireError;
using hammer::net::writeFrame;

/** A connected in-process socket pair. */
struct Pair
{
    Socket a;
    Socket b;

    Pair()
    {
        int fds[2] = {-1, -1};
        EXPECT_EQ(
            ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = Socket(fds[0]);
        b = Socket(fds[1]);
    }
};

/** readFrame's WireError kind for raw @p bytes fed to one end. */
WireError::Kind
kindFor(const std::string &bytes, std::size_t max_payload =
                                      hammer::net::kMaxFramePayload)
{
    Pair pair;
    pair.a.sendAll(bytes.data(), bytes.size());
    pair.a.close(); // EOF after the bytes: no read can hang.
    try {
        readFrame(pair.b, max_payload);
    } catch (const WireError &error) {
        return error.kind();
    }
    ADD_FAILURE() << "expected WireError";
    return WireError::Kind::Io;
}

TEST(Frame, RoundTripsEveryTypeAndPayloadShape)
{
    const std::vector<std::string> payloads = {
        "",
        "x",
        std::string("\0\x01\xff binary \0", 12),
        std::string(100000, 'q'),
    };
    Pair pair;
    for (int type = 1; type <= 9; ++type) {
        for (const std::string &payload : payloads) {
            const Frame sent{static_cast<FrameType>(type), payload};
            writeFrame(pair.a, sent);
            const auto got = readFrame(pair.b);
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(got->type, sent.type);
            EXPECT_EQ(got->payload, sent.payload);
        }
    }
}

TEST(Frame, CleanEofBetweenFramesIsNullopt)
{
    Pair pair;
    writeFrame(pair.a, Frame{FrameType::Hello, "hi"});
    pair.a.close();
    EXPECT_TRUE(readFrame(pair.b).has_value());
    EXPECT_FALSE(readFrame(pair.b).has_value());
}

TEST(Frame, TruncationMidHeaderAndMidPayloadIsTyped)
{
    const std::string whole =
        encodeFrame(Frame{FrameType::Submit, "abcdefgh"});
    // Every proper prefix must fail Truncated, never hang or parse.
    for (const std::size_t keep :
         {std::size_t{1}, std::size_t{5}, kFrameHeaderBytes - 1,
          kFrameHeaderBytes + 3, whole.size() - 1}) {
        EXPECT_EQ(kindFor(whole.substr(0, keep)),
                  WireError::Kind::Truncated)
            << "prefix of " << keep << " bytes";
    }
}

TEST(Frame, RejectsBadMagicUnknownTypeAndReservedBytes)
{
    const std::string good =
        encodeFrame(Frame{FrameType::Submit, "payload"});

    std::string bad_magic = good;
    bad_magic[0] = 'X';
    EXPECT_EQ(kindFor(bad_magic), WireError::Kind::BadMagic);

    std::string bad_type = good;
    bad_type[4] = 42;
    EXPECT_EQ(kindFor(bad_type), WireError::Kind::BadType);

    std::string zero_type = good;
    zero_type[4] = 0;
    EXPECT_EQ(kindFor(zero_type), WireError::Kind::BadType);

    for (const int reserved : {5, 6, 7}) {
        std::string bad_reserved = good;
        bad_reserved[reserved] = 1;
        EXPECT_EQ(kindFor(bad_reserved), WireError::Kind::BadType);
    }
}

TEST(Frame, OversizedLengthPrefixFailsBeforeAllocating)
{
    // A hostile 4 GiB length prefix must be rejected from the header
    // alone — kindFor closes the sender, so if readFrame tried to
    // read (or allocate) the claimed payload it would report
    // Truncated, not Oversized.
    std::string header =
        encodeFrame(Frame{FrameType::Submit, ""});
    header[8] = header[9] = header[10] = '\xff';
    header[11] = '\xfe';
    EXPECT_EQ(kindFor(header), WireError::Kind::Oversized);

    // The per-call bound applies too: a frame over max_payload is
    // oversized even though the default bound would admit it.
    const std::string big =
        encodeFrame(Frame{FrameType::Submit, std::string(512, 'x')});
    EXPECT_EQ(kindFor(big, 100), WireError::Kind::Oversized);
}

TEST(Frame, ChecksumCorruptionIsDetectedAnywhereInThePayload)
{
    const std::string payload = "the payload under protection";
    const std::string good =
        encodeFrame(Frame{FrameType::Result, payload});
    for (std::size_t i = 0; i < payload.size(); i += 5) {
        std::string corrupt = good;
        corrupt[kFrameHeaderBytes + i] ^= 0x20;
        EXPECT_EQ(kindFor(corrupt), WireError::Kind::BadChecksum)
            << "payload byte " << i;
    }
    // Corrupting the stored digest itself is equally detected.
    std::string bad_digest = good;
    bad_digest[12] ^= 0x01;
    EXPECT_EQ(kindFor(bad_digest), WireError::Kind::BadChecksum);
}

TEST(Frame, SurvivesPartialWrites)
{
    Pair pair;
    const std::string bytes =
        encodeFrame(Frame{FrameType::Submit, "split across writes"});
    std::thread dribble([&] {
        for (const char c : bytes)
            pair.a.sendAll(&c, 1);
    });
    const auto got = readFrame(pair.b);
    dribble.join();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, "split across writes");
}

TEST(Frame, RecvTimeoutIsTypedNotAHang)
{
    Pair pair;
    pair.b.setRecvTimeout(50);
    try {
        readFrame(pair.b);
        FAIL() << "expected WireError(Timeout)";
    } catch (const WireError &error) {
        EXPECT_EQ(error.kind(), WireError::Kind::Timeout);
    }
}

TEST(JobPayloadTest, RoundTripsEnvelopeAndVerbatimBody)
{
    const std::string body =
        "{\"workload\": \"bv:5\"}\nwith\nembedded\nnewlines\0x";
    const std::string payload = encodeJobPayload(7, 2, body);
    const JobPayload parsed = parseJobPayload(payload);
    EXPECT_EQ(parsed.id, 7u);
    EXPECT_EQ(parsed.attempt, 2);
    EXPECT_TRUE(parsed.kind.empty());
    EXPECT_EQ(parsed.body, body);

    const JobPayload error = parseJobPayload(
        encodeErrorPayload(9, 0, "invalid_argument", "bad spec"));
    EXPECT_EQ(error.id, 9u);
    EXPECT_EQ(error.kind, "invalid_argument");
    EXPECT_EQ(error.body, "bad spec");
}

TEST(JobPayloadTest, HostileSpecLinesRoundTripByteExact)
{
    // The flood the serving parser is hardened against must also
    // cross the wire untouched: framing is payload-agnostic.
    Pair pair;
    const auto lines = hammer::chaos::hostileSpecLines(2024, 64);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        writeFrame(pair.a,
                   Frame{FrameType::Submit,
                         encodeJobPayload(i, 0, lines[i])});
        const auto got = readFrame(pair.b);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(parseJobPayload(got->payload).body, lines[i]);
    }
}

TEST(JobPayloadTest, HostileEnvelopesAreTypedErrors)
{
    const std::vector<std::string> hostile = {
        "",                                   // no envelope line
        "not json",                           // no newline at all
        "not json\nbody",                     // unparseable envelope
        "{}\nbody",                           // missing id/attempt
        "{\"id\": -1, \"attempt\": 0}\nb",    // negative id
        "{\"id\": 1.5, \"attempt\": 0}\nb",   // fractional id
        "{\"id\": 1, \"attempt\": 2000000}\nb", // absurd attempt
        "{\"id\": 1}\nb",                     // missing attempt
        "[1,2]\nb",                           // envelope not an object
    };
    for (const std::string &payload : hostile) {
        try {
            parseJobPayload(payload);
            FAIL() << "expected WireError for: " << payload;
        } catch (const WireError &error) {
            EXPECT_EQ(error.kind(), WireError::Kind::BadPayload)
                << payload;
        }
    }
}

TEST(Address, SyntaxErrorsAndResolutionAreTyped)
{
    const std::vector<std::string> bad_addresses = {
        "",         "garbage",          "unix:",
        "tcp:",     "tcp:hostonly",     "tcp:host:notaport",
        "tcp:host:99999", "tcp::123"};
    for (const std::string &bad : bad_addresses) {
        try {
            hammer::net::connectTo(bad, 100);
            FAIL() << "expected WireError for '" << bad << "'";
        } catch (const WireError &error) {
            EXPECT_EQ(error.kind(), WireError::Kind::Address)
                << bad;
        }
    }
    // A well-formed address nobody listens on: Connect, not a hang.
    try {
        hammer::net::connectTo("tcp:127.0.0.1:1", 200);
        FAIL() << "expected WireError(Connect)";
    } catch (const WireError &error) {
        EXPECT_EQ(error.kind(), WireError::Kind::Connect);
    }
}

TEST(ListenerTest, ResolvesKernelAssignedPortsAndUnblocksAccept)
{
    Listener listener("tcp:127.0.0.1:0");
    EXPECT_NE(listener.address(), "tcp:127.0.0.1:0")
        << "port 0 must resolve to the kernel-assigned port";

    // connect/accept round-trip over the resolved address.
    Socket client = hammer::net::connectTo(listener.address());
    Socket served = listener.accept();
    ASSERT_TRUE(served.valid());
    writeFrame(client, Frame{FrameType::Hello, "ping"});
    const auto got = readFrame(served);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, "ping");

    // close() from another thread unblocks a parked accept().
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        listener.close();
    });
    Socket after = listener.accept();
    closer.join();
    EXPECT_FALSE(after.valid());
}

} // namespace
