/**
 * @file
 * ShardRouter + ShardWorker integration over Unix-domain sockets:
 * sharded campaigns are bit-identical to local ExecutionService runs
 * (via api::canonicalResultJson), routing is cache-affine, failures
 * propagate as typed errors, and seeded FaultPlan campaigns — lost
 * sends, lost responses, a real mid-campaign shard death — complete
 * with bit-identical results and replayable decisions.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/json.hpp"
#include "api/pipeline.hpp"
#include "api/service.hpp"
#include "chaos/fault_plan.hpp"
#include "net/remote_backend.hpp"
#include "net/router.hpp"
#include "net/shard_worker.hpp"

namespace {

using hammer::api::canonicalResultJson;
using hammer::api::ExecutionService;
using hammer::api::ExecutionServiceOptions;
using hammer::api::parseJson;
using hammer::api::parseSpecLine;
using hammer::api::Result;
using hammer::api::SpecLine;
using hammer::chaos::FaultPlan;
using hammer::chaos::FaultPlanOptions;
using hammer::net::RemoteJobError;
using hammer::net::RouterError;
using hammer::net::ShardRouter;
using hammer::net::ShardRouterOptions;
using hammer::net::ShardWorker;
using hammer::net::ShardWorkerOptions;

/** N in-process shard workers on Unix sockets in a fresh temp dir. */
class Fleet
{
  public:
    explicit Fleet(int count)
    {
        char tmpl[] = "/tmp/hammer_net_XXXXXX";
        const char *dir = ::mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        dir_ = dir;
        for (int i = 0; i < count; ++i) {
            workers_.push_back(std::make_unique<ShardWorker>(
                "unix:" + dir_ + "/s" + std::to_string(i) +
                    ".sock",
                ShardWorkerOptions{}));
            threads_.emplace_back(
                [worker = workers_.back().get()] {
                    worker->run();
                });
        }
    }

    ~Fleet()
    {
        for (auto &worker : workers_)
            worker->stop();
        for (auto &thread : threads_)
            thread.join();
        ::rmdir(dir_.c_str());
    }

    std::vector<std::string> addresses() const
    {
        std::vector<std::string> out;
        for (const auto &worker : workers_)
            out.push_back(worker->address());
        return out;
    }

    ShardWorker &worker(int index) { return *workers_[index]; }

  private:
    std::string dir_;
    std::vector<std::unique_ptr<ShardWorker>> workers_;
    std::vector<std::thread> threads_;
};

/** A repeat-heavy campaign: JSON + CSV lines, duplicates included. */
std::vector<std::string>
campaignLines()
{
    std::vector<std::string> lines;
    for (int seed = 1; seed <= 4; ++seed) {
        lines.push_back(
            "{\"workload\": \"bv:5\", \"backend\": \"channel\", "
            "\"shots\": 256, \"seed\": " +
            std::to_string(seed) + "}");
        lines.push_back("ghz:4,channel,256," +
                        std::to_string(seed));
    }
    // Duplicates: the affinity + caching traffic.
    for (int repeat = 0; repeat < 4; ++repeat) {
        lines.push_back("bv:5,channel,256,1");
        lines.push_back("ghz:4,channel,256,2,readout+hammer");
    }
    return lines;
}

/** Canonical forms of a local (in-process) run over @p lines. */
std::vector<std::string>
localCanonical(const std::vector<std::string> &lines)
{
    ExecutionServiceOptions options;
    options.workers = 1;
    ExecutionService service{options};
    std::vector<ExecutionService::JobHandle> handles;
    for (const std::string &line : lines) {
        const SpecLine parsed = parseSpecLine(line);
        handles.push_back(
            service.submit(parsed.spec, parsed.priority));
    }
    std::vector<std::string> out;
    for (const auto &handle : handles)
        out.push_back(canonicalResultJson(
            service.wait(handle).json(-1)));
    return out;
}

std::vector<std::string>
canonical(const std::vector<std::string> &result_lines)
{
    std::vector<std::string> out;
    for (const std::string &line : result_lines)
        out.push_back(canonicalResultJson(line));
    return out;
}

TEST(ShardRouter, ShardedCampaignBitIdenticalToLocalService)
{
    const auto lines = campaignLines();
    const auto expected = localCanonical(lines);

    Fleet fleet(2);
    ShardRouterOptions options;
    options.addresses = fleet.addresses();
    ShardRouter router{options};
    const auto got = canonical(router.runMany(lines));

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << "line " << i;

    const auto stats = router.stats();
    EXPECT_EQ(stats.submitted, lines.size());
    EXPECT_EQ(stats.resultsReceived, lines.size());
    EXPECT_EQ(stats.retries, 0u);
}

TEST(ShardRouter, RoutesIdenticalExecutionsToOneShard)
{
    Fleet fleet(2);
    ShardRouterOptions options;
    options.addresses = fleet.addresses();
    ShardRouter router{options};

    // Six identical executions: affinity must put every one on the
    // same shard, where the service's coalescing/result cache makes
    // the sample stage run exactly once fleet-wide.
    std::vector<std::string> lines(6, "bv:5,channel,256,11");
    router.runMany(lines);

    std::uint64_t total_runs = 0;
    std::uint64_t total_submitted = 0;
    int shards_used = 0;
    for (std::size_t i = 0; i < router.shardCount(); ++i) {
        const auto stats = parseJson(router.fetchStats(i));
        EXPECT_EQ(stats.at("type").asString(), "service_stats");
        const auto submitted =
            static_cast<std::uint64_t>(
                stats.at("submitted").asNumber());
        total_submitted += submitted;
        total_runs += static_cast<std::uint64_t>(
            stats.at("execute_runs").asNumber());
        if (submitted > 0)
            ++shards_used;
    }
    EXPECT_EQ(total_submitted, 6u);
    EXPECT_EQ(shards_used, 1) << "affinity: one exec key, one shard";
    EXPECT_EQ(total_runs, 1u)
        << "the shard's caches must collapse the repeats";
}

TEST(ShardRouter, PropagatesRemoteFailuresAsTypedErrors)
{
    Fleet fleet(1);
    ShardRouterOptions options;
    options.addresses = fleet.addresses();
    ShardRouter router{options};

    // Parses locally, fails remotely (no such workload family).
    const std::uint64_t id =
        router.submit("nosuchfamily:5,channel,64,1");
    try {
        router.wait(id);
        FAIL() << "expected RemoteJobError";
    } catch (const RemoteJobError &error) {
        EXPECT_EQ(error.kind(), "invalid_argument")
            << error.what();
    }

    // Malformed lines fail at the local boundary and never consume
    // a dispatch.
    EXPECT_THROW(router.submit("bv:5,channel,notanumber"),
                 std::invalid_argument);
    EXPECT_EQ(router.stats().dispatched, 1u);

    // The fleet stays healthy after both failure shapes.
    const auto ok = router.runMany({"bv:4,channel,128,1"});
    EXPECT_EQ(canonical(ok),
              localCanonical({"bv:4,channel,128,1"}));
}

TEST(ShardRouterChaos, LostResponsesReplayDeterministically)
{
    const auto lines = campaignLines();
    const auto expected = localCanonical(lines);

    // Two same-seed campaigns: recv-kills only, heartbeats off, so
    // the (id, attempt) fault-consultation sequence — and therefore
    // every router decision — is a pure function of the seed.
    hammer::net::RouterStats runs[2];
    for (int run = 0; run < 2; ++run) {
        FaultPlanOptions faults;
        faults.shardRecvKillRate = 0.25;
        Fleet fleet(2);
        ShardRouterOptions options;
        options.addresses = fleet.addresses();
        options.faultInjector =
            std::make_shared<FaultPlan>(909, faults);
        ShardRouter router{options};
        const auto got = canonical(router.runMany(lines));
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], expected[i])
                << "run " << run << " line " << i;
        runs[run] = router.stats();
        EXPECT_GT(runs[run].recvDropped, 0u)
            << "the plan must actually lose responses";
        EXPECT_EQ(runs[run].retries, runs[run].recvDropped)
            << "each lost response costs exactly one re-dispatch";
    }
    EXPECT_EQ(runs[0].recvDropped, runs[1].recvDropped);
    EXPECT_EQ(runs[0].retries, runs[1].retries);
    EXPECT_EQ(runs[0].dispatched, runs[1].dispatched);
}

TEST(ShardRouterChaos, LostSendsRerouteBitIdentically)
{
    const auto lines = campaignLines();
    const auto expected = localCanonical(lines);

    FaultPlanOptions faults;
    faults.shardSendKillRate = 0.2;
    Fleet fleet(2);
    ShardRouterOptions options;
    options.addresses = fleet.addresses();
    options.faultInjector = std::make_shared<FaultPlan>(4242, faults);
    ShardRouter router{options};

    const auto got = canonical(router.runMany(lines));
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << "line " << i;

    const auto stats = router.stats();
    EXPECT_GT(stats.shardDeaths, 0u)
        << "the plan must actually kill connections";
    EXPECT_GT(stats.reconnects, 0u)
        << "killed connections must come back";
}

TEST(ShardRouterChaos, RealShardDeathMidCampaignReroutes)
{
    const auto lines = campaignLines();
    const auto expected = localCanonical(lines);

    Fleet fleet(2);
    ShardRouterOptions options;
    options.addresses = fleet.addresses();
    // The dead shard never comes back: keep the reconnect probe
    // cheap so rerouting is fast.
    options.reconnectAttempts = 2;
    options.reconnectDelayMs = 5;
    ShardRouter router{options};

    std::vector<std::uint64_t> ids;
    for (const std::string &line : lines)
        ids.push_back(router.submit(line));
    fleet.worker(1).stop(); // Mid-campaign, jobs in flight.

    std::vector<std::string> got;
    for (const std::uint64_t id : ids)
        got.push_back(canonicalResultJson(router.wait(id)));

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << "line " << i;
}

TEST(ShardRouter, ShutdownShardsDrainsTheFleet)
{
    auto fleet = std::make_unique<Fleet>(2);
    ShardRouterOptions options;
    options.addresses = fleet->addresses();
    ShardRouter router{options};
    router.runMany({"bv:4,channel,128,1", "ghz:4,channel,128,2"});
    router.shutdownShards();
    // run() exits on the Shutdown frame; the Fleet destructor's
    // stop() + join() then completes promptly instead of timing the
    // test out.
    fleet.reset();
}

TEST(RemoteBackend, MatchesTheDelegateBackendBitIdentically)
{
    Fleet fleet(2);
    auto router = std::make_shared<ShardRouter>([&] {
        ShardRouterOptions options;
        options.addresses = fleet.addresses();
        return options;
    }());
    hammer::net::enableRemoteBackend(router);

    ExecutionServiceOptions service_options;
    service_options.workers = 1;
    ExecutionService service{service_options};

    hammer::api::ExperimentSpec remote;
    remote.workload = "bv:5";
    remote.backend = "remote";
    remote.backendSpec.serviceBackend = "channel";
    remote.backendSpec.shots = 256;
    remote.backendSpec.seed = 9;

    hammer::api::ExperimentSpec local = remote;
    local.backend = "channel";

    const Result via_remote = service.wait(service.submit(remote));
    const Result via_local = service.wait(service.submit(local));
    // backend/label identity fields differ ("remote" vs "channel");
    // the histograms and metrics must not.
    EXPECT_EQ(via_remote.raw.entries().size(),
              via_local.raw.entries().size());
    for (std::size_t i = 0; i < via_local.raw.entries().size();
         ++i) {
        EXPECT_EQ(via_remote.raw.entries()[i].outcome,
                  via_local.raw.entries()[i].outcome);
        EXPECT_EQ(via_remote.raw.entries()[i].probability,
                  via_local.raw.entries()[i].probability);
    }
    EXPECT_EQ(via_remote.mitigated.entries().size(),
              via_local.mitigated.entries().size());
    for (std::size_t i = 0;
         i < via_local.mitigated.entries().size(); ++i) {
        EXPECT_EQ(via_remote.mitigated.entries()[i].outcome,
                  via_local.mitigated.entries()[i].outcome);
        EXPECT_EQ(via_remote.mitigated.entries()[i].probability,
                  via_local.mitigated.entries()[i].probability);
    }

    hammer::net::disableRemoteBackend();
    // With the hook cleared, remote submits fail at the boundary.
    EXPECT_THROW(service.submit(remote), std::invalid_argument);
}

} // namespace
